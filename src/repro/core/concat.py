"""The ``Concat`` combiner — Algorithm 1 / Theorem 1.1.

``Concat`` combines one ``(T2, α)``-network-static algorithm ``SAlg`` with a
family of ``T1``-dynamic algorithm instances ``DAlg``:

* ``SAlg`` runs continuously from the start and produces, every round, a
  partial solution for the *current* graph (property B.1) that is locally
  stable wherever the graph is locally static (property B.2);
* every round a **new** ``DAlg`` instance is started on the previous round's
  ``SAlg`` output; each instance runs for ``T1 - 1`` rounds;
* the combiner's output is always the output of the **oldest** live ``DAlg``
  instance — i.e. the instance that has had a full ``T1 - 1`` rounds to extend
  the ``SAlg`` backbone into a complete solution.

Theorem 1.1 then gives: (1) every round's output is a ``T1``-dynamic solution
and (2) if the α-neighbourhood of ``v`` is static on ``[r, r2]``, the output of
``v`` is unchanged on ``[r + T1 + T2, r2]``.

Implementation notes
--------------------
* Each ``DAlg`` instance gets its own independent random streams (derived from
  the instance's start round), exactly as if it were a fresh run.
* The per-round broadcast of ``Concat`` is a dict bundling the sub-messages of
  ``SAlg`` and of every live ``DAlg`` instance; ``deliver`` splits the inboxes
  accordingly.  Message sizes therefore grow by a factor ``T1`` — the paper
  accepts the same blow-up (``T1`` parallel instances), and experiment E12
  measures it.
* Nodes that wake up mid-run join ``SAlg`` and every live ``DAlg`` instance at
  their wake-up round; since all shipped algorithms have a single round type,
  this is exactly the asynchronous wake-up behaviour the paper requires.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, Mapping, Optional

from repro.errors import ConfigurationError
from repro.types import NodeId, Value
from repro.problems.packing_covering import ProblemPair
from repro.runtime.algorithm import AlgorithmSetup, DistributedAlgorithm
from repro.runtime.messages import Message
from repro.core.interfaces import DynamicAlgorithm, NetworkStaticAlgorithm

__all__ = ["Concat"]

_SALG_KEY = "s"


class Concat(DistributedAlgorithm):
    """Algorithm 1: combine a network-static and a dynamic algorithm.

    Parameters
    ----------
    static_factory:
        Zero-argument callable producing a fresh ``SAlg`` instance.
    dynamic_factory:
        Zero-argument callable producing a fresh ``DAlg`` instance (one is
        created every round).
    T1:
        The dynamic window: each ``DAlg`` instance lives for ``T1 - 1`` rounds
        and the combiner keeps ``T1 - 1`` instances alive.  Must be ``>= 2``.
    """

    name = "concat"

    # Audited: NOT eligible for incremental delivery.  Every round starts a
    # fresh DAlg instance, so the broadcast bundle gains a new start-round
    # key each round (every node's message changes every round by
    # construction) and ``end_round`` snapshots the SAlg output of every
    # awake node.  The combiner is inherently O(n) per round — exactly the
    # paper's T1-parallel-instances blow-up.
    message_stability = "none"

    def __init__(
        self,
        static_factory: Callable[[], NetworkStaticAlgorithm],
        dynamic_factory: Callable[[], DynamicAlgorithm],
        T1: int,
    ) -> None:
        super().__init__()
        if T1 < 2:
            raise ConfigurationError(f"T1 must be >= 2, got {T1}")
        self._static_factory = static_factory
        self._dynamic_factory = dynamic_factory
        self._T1 = T1
        self._salg: Optional[NetworkStaticAlgorithm] = None
        #: start round -> live DAlg instance (insertion-ordered: oldest first).
        self._instances: "OrderedDict[int, DynamicAlgorithm]" = OrderedDict()
        self._salg_output: Dict[NodeId, Value] = {}
        self._round_index = 0

    # -- metadata ----------------------------------------------------------------

    @property
    def T1(self) -> int:
        """The dynamic window size."""
        return self._T1

    def problem_pair(self) -> ProblemPair:
        """The problem pair of the wrapped algorithms (taken from ``SAlg``)."""
        if self._salg is not None:
            return self._salg.problem_pair()
        return self._static_factory().problem_pair()

    @property
    def live_instances(self) -> int:
        """Number of currently live ``DAlg`` instances."""
        return len(self._instances)

    # -- lifecycle -----------------------------------------------------------------

    def setup(self, setup: AlgorithmSetup) -> None:
        super().setup(setup)
        self._instances.clear()
        self._round_index = 0
        self._salg = self._static_factory()
        self._salg.setup(
            AlgorithmSetup(
                n=setup.n,
                rng_factory=setup.rng_factory.child("salg"),
                input=setup.input,
            )
        )
        # φ_0: before SAlg has produced anything, the backbone is the external
        # input (the remark after Theorem 1.1) or ⊥ everywhere.
        self._salg_output = dict(setup.input) if setup.input else {}

    def on_wake(self, v: NodeId) -> None:
        assert self._salg is not None
        self._salg.wake(v)
        for instance in self._instances.values():
            instance.wake(v)

    def begin_round(self, round_index: int) -> None:
        assert self._salg is not None
        self._round_index = round_index
        # Line 1 of Algorithm 1: start a new DAlg instance on φ_{r-1}.
        instance = self._dynamic_factory()
        instance.setup(
            AlgorithmSetup(
                n=self.config.n,
                rng_factory=self.config.rng_factory.child("dalg", round_index),
                input=dict(self._salg_output),
            )
        )
        for v in sorted(self._awake):
            instance.wake(v)
        self._instances[round_index] = instance
        # Lines 2-3: keep at most T1 - 1 instances, discarding the oldest.
        while len(self._instances) > self._T1 - 1:
            self._instances.popitem(last=False)
        self._salg.begin_round(round_index)
        for inst in self._instances.values():
            inst.begin_round(round_index)

    def compose(self, v: NodeId) -> Message:
        assert self._salg is not None
        bundle: Dict[object, Message] = {_SALG_KEY: self._salg.compose(v)}
        for start_round, instance in self._instances.items():
            bundle[start_round] = instance.compose(v)
        return bundle

    def deliver(self, v: NodeId, inbox: Mapping[NodeId, Message]) -> None:
        assert self._salg is not None
        salg_inbox = {u: msg[_SALG_KEY] for u, msg in inbox.items() if isinstance(msg, dict)}
        self._salg.deliver(v, salg_inbox)
        for start_round, instance in self._instances.items():
            sub_inbox = {
                u: msg[start_round]
                for u, msg in inbox.items()
                if isinstance(msg, dict) and start_round in msg
            }
            instance.deliver(v, sub_inbox)

    def end_round(self, round_index: int) -> None:
        assert self._salg is not None
        self._salg.end_round(round_index)
        for instance in self._instances.values():
            instance.end_round(round_index)
        # Line 6: remember the SAlg output φ_r — it seeds next round's instance.
        self._salg_output = {v: self._salg.output(v) for v in self._awake}

    def output(self, v: NodeId) -> Value:
        # Line 7: output the output of the oldest DAlg instance.
        if not self._instances:
            return None
        oldest = next(iter(self._instances.values()))
        return oldest.output(v)

    # -- introspection -----------------------------------------------------------------

    def backbone_output(self, v: NodeId) -> Value:
        """The current ``SAlg`` output for ``v`` (exposed for analysis / ablations)."""
        return self._salg_output.get(v)

    def state_summary(self) -> Dict[str, object]:
        return {
            "round": self._round_index,
            "live_instances": list(self._instances.keys()),
            "salg_output": dict(self._salg_output),
        }

    def metrics(self) -> Mapping[str, float]:
        return {"live_instances": float(len(self._instances))}
