"""Trace-based verification of the framework's behavioural properties.

These checkers operate exclusively on recorded
:class:`~repro.runtime.trace.ExecutionTrace` objects (topologies + outputs),
never on live algorithm state, and are used both by the test-suite and by the
experiment harness:

* :func:`verify_extension` — property A.1 (the output always extends the input);
* :func:`verify_never_retracts` — the stronger monotonicity all shipped dynamic
  algorithms satisfy (an output, once ≠ ⊥, never changes);
* :func:`verify_partial_solution_every_round` — property B.1;
* :func:`verify_locally_static` — property B.2 / Theorem 1.1(2): wherever an
  α-neighbourhood is static for an interval, the node's output is fixed from
  ``T`` rounds into the interval;
* :func:`verify_t_dynamic` — the T-dynamic guarantee (Theorem 1.1(1));
* :func:`find_static_intervals` — the maximal locally-static intervals of a
  node, used by the stability experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import VerificationError
from repro.types import Assignment, Interval, NodeId
from repro.problems.dynamic_problem import TDynamicSpec
from repro.problems.packing_covering import ProblemPair
from repro.runtime.trace import ExecutionTrace

__all__ = [
    "StaticIntervalReport",
    "find_static_intervals",
    "verify_extension",
    "verify_never_retracts",
    "verify_partial_solution_every_round",
    "verify_locally_static",
    "verify_t_dynamic",
]


# ---------------------------------------------------------------------------
# A.1 — input extension / monotone outputs
# ---------------------------------------------------------------------------

def verify_extension(trace: ExecutionTrace, input_assignment: Optional[Assignment]) -> List[str]:
    """Check property A.1: every round's output extends the input vector.

    Returns a list of human-readable violation descriptions (empty = OK).
    """
    problems: List[str] = []
    if not input_assignment:
        return problems
    for r in trace.rounds():
        outputs = trace.outputs(r)
        for v, value in input_assignment.items():
            if value is None:
                continue
            if v not in trace.topology(r).nodes:
                continue
            if outputs.get(v) != value:
                problems.append(
                    f"round {r}: node {v} output {outputs.get(v)!r} does not preserve input {value!r}"
                )
    return problems


def verify_never_retracts(trace: ExecutionTrace) -> List[str]:
    """Check that once a node outputs a value ≠ ⊥ it never changes it again.

    This is the monotone behaviour of the paper's dynamic algorithms ("a node
    that generates an output keeps it in all following rounds", Section 7.1).
    """
    problems: List[str] = []
    committed: Dict[NodeId, object] = {}
    for r in trace.rounds():
        for v, value in trace.outputs(r).items():
            if v in committed:
                if value != committed[v]:
                    problems.append(
                        f"round {r}: node {v} changed committed output {committed[v]!r} -> {value!r}"
                    )
            elif value is not None:
                committed[v] = value
    return problems


# ---------------------------------------------------------------------------
# B.1 — partial solution on the current graph every round
# ---------------------------------------------------------------------------

def verify_partial_solution_every_round(
    trace: ExecutionTrace, pair: ProblemPair, *, start_round: int = 1
) -> List[str]:
    """Check property B.1: every round's output is a partial solution for ``G_r``."""
    problems: List[str] = []
    for r in range(start_round, trace.num_rounds + 1):
        topo = trace.topology(r)
        outputs = trace.outputs(r)
        bad = pair.partial_violations(topo, outputs)
        if bad:
            problems.append(f"round {r}: partial-solution violations at nodes {bad[:10]}")
    return problems


# ---------------------------------------------------------------------------
# B.2 / Theorem 1.1(2) — locally static output wherever the graph is locally static
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class StaticIntervalReport:
    """A maximal interval during which a node's α-neighbourhood was static."""

    node: NodeId
    interval: Interval
    #: The node's outputs during the interval (for debugging stability failures).
    changes_after_grace: int
    stabilised: bool


def find_static_intervals(trace: ExecutionTrace, v: NodeId, alpha: int) -> List[Interval]:
    """Maximal intervals ``[r, r2]`` in which the α-neighbourhood of ``v`` is static.

    "Static" means: the α-ball of ``v`` (node set *and* induced edges) is
    identical in every round of the interval.  Rounds where ``v`` is asleep
    never belong to an interval.
    """
    signatures: List[Optional[Tuple[frozenset, frozenset]]] = []
    for r in trace.rounds():
        topo = trace.topology(r)
        if v not in topo.nodes:
            signatures.append(None)
            continue
        ball = topo.ball(v, alpha)
        signatures.append((ball, topo.induced_edges(ball)))

    intervals: List[Interval] = []
    start: Optional[int] = None
    for index, signature in enumerate(signatures, start=1):
        if signature is None:
            if start is not None:
                intervals.append(Interval(start, index - 1))
                start = None
            continue
        if start is None:
            start = index
        elif signature != signatures[index - 2]:
            intervals.append(Interval(start, index - 1))
            start = index
    if start is not None:
        intervals.append(Interval(start, len(signatures)))
    return intervals


def verify_locally_static(
    trace: ExecutionTrace,
    *,
    alpha: int,
    grace: int,
    nodes: Optional[Sequence[NodeId]] = None,
    min_interval_length: int = 1,
) -> List[StaticIntervalReport]:
    """Check the locally-static guarantee with stabilisation time ``grace``.

    For every node and every maximal interval ``[r, r2]`` in which its
    α-neighbourhood is static with ``r2 - r >= grace`` (so there is something
    to check), the node's output must not change during ``[r + grace, r2]``
    and must not be ⊥ there.

    Returns one report per (node, interval) pair considered; a report with
    ``stabilised == False`` is a violation of the guarantee.
    """
    node_list = list(nodes) if nodes is not None else sorted(
        trace.topology(trace.num_rounds).nodes
    )
    reports: List[StaticIntervalReport] = []
    for v in node_list:
        for interval in find_static_intervals(trace, v, alpha):
            if len(interval) < max(min_interval_length, grace + 1):
                continue
            check = Interval(interval.start + grace, interval.end)
            values = [trace.output_of(v, r) for r in range(check.start, check.end + 1)]
            changes = sum(1 for a, b in zip(values, values[1:]) if a != b)
            stabilised = changes == 0 and all(value is not None for value in values)
            reports.append(
                StaticIntervalReport(
                    node=v,
                    interval=interval,
                    changes_after_grace=changes,
                    stabilised=stabilised,
                )
            )
    return reports


# ---------------------------------------------------------------------------
# Theorem 1.1(1) — T-dynamic solution every round
# ---------------------------------------------------------------------------

def verify_t_dynamic(
    trace: ExecutionTrace,
    pair: ProblemPair,
    T: int,
    *,
    start_round: int = 1,
    raise_on_failure: bool = False,
) -> List[str]:
    """Check that every round's output is a ``T``-dynamic solution.

    Returns human-readable violation descriptions; optionally raises
    :class:`~repro.errors.VerificationError` on the first failure.
    """
    spec = TDynamicSpec(pair, T)
    problems: List[str] = []
    for result in spec.check_trace(trace, start_round=start_round):
        if not result.is_valid:
            message = (
                f"round {result.round_index}: T-dynamic violation "
                f"(packing={list(result.packing_violations)[:5]}, "
                f"covering={list(result.covering_violations)[:5]}, "
                f"undecided={list(result.undecided_nodes)[:5]})"
            )
            if raise_on_failure:
                raise VerificationError(message)
            problems.append(message)
    return problems
