"""The paper's algorithmic framework (Section 3).

* :mod:`repro.core.interfaces` — the two abstract algorithm roles:
  :class:`DynamicAlgorithm` (``T``-dynamic, properties A.1/A.2) and
  :class:`NetworkStaticAlgorithm` (``(T, α)``-network-static, properties
  B.1/B.2).
* :mod:`repro.core.concat` — the ``Concat`` combiner (Algorithm 1 /
  Theorem 1.1) that turns one algorithm of each role into an algorithm that
  always outputs a ``T1``-dynamic solution and is locally stable wherever the
  graph is locally static.
* :mod:`repro.core.windows` — practical window-size defaults (``Θ(log n)``).
* :mod:`repro.core.properties` — trace-based verification of A.1/A.2/B.1/B.2,
  the T-dynamic guarantee and the locally-static guarantee.
* :mod:`repro.core.runner` — one-call experiment execution helpers.
"""

from repro.core.interfaces import DynamicAlgorithm, NetworkStaticAlgorithm
from repro.core.concat import Concat
from repro.core.windows import default_window, window_for
from repro.core.properties import (
    StaticIntervalReport,
    find_static_intervals,
    verify_extension,
    verify_locally_static,
    verify_never_retracts,
    verify_partial_solution_every_round,
    verify_t_dynamic,
)
from repro.core.runner import run_combined, run_dynamic_problem

__all__ = [
    "DynamicAlgorithm",
    "NetworkStaticAlgorithm",
    "Concat",
    "default_window",
    "window_for",
    "StaticIntervalReport",
    "find_static_intervals",
    "verify_extension",
    "verify_never_retracts",
    "verify_partial_solution_every_round",
    "verify_locally_static",
    "verify_t_dynamic",
    "run_combined",
    "run_dynamic_problem",
]
