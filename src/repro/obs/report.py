"""Store-backed Markdown reporting and trace summaries.

The store holds provenance-rich rows; this module turns them into something
a human reads.  :func:`render_study` aggregates every entry of a store (or
one kind) into a Markdown study summary — per-adversary metric heat tables,
phase-time splits and fleet counters from the telemetry provenance block —
with no network access and no re-execution.  :func:`summarize_trace`
condenses an NDJSON trace into round/chunk/fleet statistics.

Imported lazily by the CLI command handlers only: this module reads the
scenarios store, so importing it from ``repro.obs.__init__`` would cycle
back through the simulator.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.report import format_table
from repro.errors import ReproError
from repro.scenarios.store import ResultsStore, StoreEntry

__all__ = ["markdown_table", "render_study", "summarize_trace"]

#: Unicode ramp used to annotate numeric cells with a per-column heat glyph.
_HEAT_RAMP = "▁▂▃▄▅▆▇█"


def _format_cell(value: Any, precision: int) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if abs(value - round(value)) < 1e-9 and abs(value) < 1e12:
            return str(int(round(value)))
        return f"{value:.{precision}f}"
    return "" if value is None else str(value)


def markdown_table(
    rows: Sequence[Mapping[str, Any]],
    *,
    columns: Optional[Sequence[str]] = None,
    precision: int = 3,
    heat: bool = False,
) -> str:
    """Render rows as a GitHub-flavoured Markdown pipe table.

    Numeric columns are right-aligned.  With ``heat=True`` every numeric
    cell gains a per-column glyph from a min-max-scaled ramp, giving a
    text-only heat table (columns with a single distinct value are left
    unannotated).
    """
    if not rows:
        return "(no rows)\n"
    if columns is not None:
        keys = list(columns)
    else:
        keys = []
        for row in rows:
            for key in row:
                if key not in keys:
                    keys.append(key)

    def numeric(key: str) -> bool:
        values = [row.get(key) for row in rows if row.get(key) is not None]
        return bool(values) and all(
            isinstance(v, (int, float)) and not isinstance(v, bool) for v in values
        )

    numeric_keys = {key for key in keys if numeric(key)}
    spans: Dict[str, Tuple[float, float]] = {}
    if heat:
        for key in numeric_keys:
            values = [float(row[key]) for row in rows if row.get(key) is not None]
            low, high = min(values), max(values)
            if high > low:
                spans[key] = (low, high)

    def cell(row: Mapping[str, Any], key: str) -> str:
        text = _format_cell(row.get(key), precision)
        span = spans.get(key)
        if span is not None and row.get(key) is not None:
            low, high = span
            index = int(round((float(row[key]) - low) / (high - low) * (len(_HEAT_RAMP) - 1)))
            text = f"{text} {_HEAT_RAMP[index]}"
        return text

    lines = ["| " + " | ".join(keys) + " |"]
    lines.append(
        "|" + "|".join(("---:" if key in numeric_keys else "---") for key in keys) + "|"
    )
    for row in rows:
        lines.append("| " + " | ".join(cell(row, key) for key in keys) + " |")
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# study rendering
# ---------------------------------------------------------------------------


def _split_columns(rows: Sequence[Mapping[str, Any]]) -> Tuple[List[str], List[str]]:
    """``(categorical, numeric)`` column names across ``rows``."""
    keys: List[str] = []
    for row in rows:
        for key in row:
            if key not in keys:
                keys.append(key)
    categorical: List[str] = []
    numeric: List[str] = []
    for key in keys:
        values = [row.get(key) for row in rows if row.get(key) is not None]
        if not values:
            continue
        if any(isinstance(v, str) or isinstance(v, bool) for v in values):
            categorical.append(key)
        elif all(isinstance(v, (int, float)) for v in values):
            if key != "seed":
                numeric.append(key)
    return categorical, numeric


def _preferred_metrics(numeric: Sequence[str]) -> List[str]:
    preferred = [c for c in numeric if "valid" in c.lower() or "stab" in c.lower()]
    return preferred or list(numeric)


def _pick_index(categorical: Sequence[str]) -> Optional[str]:
    for needle in ("adversary", "algorithm"):
        for column in categorical:
            if needle in column.lower():
                return column
    return categorical[0] if categorical else None


def _mean(values: Sequence[float]) -> float:
    return sum(values) / len(values)


def _group_means(
    rows: Sequence[Mapping[str, Any]], by: Sequence[str], metric: str
) -> Dict[Tuple[Any, ...], float]:
    groups: Dict[Tuple[Any, ...], List[float]] = {}
    for row in rows:
        value = row.get(metric)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            continue
        groups.setdefault(tuple(row.get(k) for k in by), []).append(float(value))
    return {key: _mean(values) for key, values in groups.items()}


def _entry_tables(entry: StoreEntry) -> List[str]:
    """Heat tables summarising one entry's rows."""
    rows = [dict(row) for row in entry.rows]
    if not rows:
        return ["(no rows)\n"]
    categorical, numeric = _split_columns(rows)
    metrics = _preferred_metrics(numeric)
    index = _pick_index(categorical)
    out: List[str] = []
    if index is not None and len(categorical) >= 2:
        # Pivot: index x second-categorical, one heat table per metric.
        other = next(c for c in categorical if c != index)
        for metric in metrics:
            means = _group_means(rows, (index, other), metric)
            if not means:
                continue
            col_values = sorted({key[1] for key in means}, key=str)
            table_rows = []
            for idx_value in sorted({key[0] for key in means}, key=str):
                row: Dict[str, Any] = {index: idx_value}
                for col_value in col_values:
                    if (idx_value, col_value) in means:
                        row[f"{other}={col_value}"] = means[(idx_value, col_value)]
                table_rows.append(row)
            out.append(f"mean `{metric}` by `{index}` × `{other}`:\n")
            out.append(markdown_table(table_rows, heat=True))
    elif index is not None:
        means_by_metric = {m: _group_means(rows, (index,), m) for m in metrics}
        idx_values = sorted(
            {key[0] for means in means_by_metric.values() for key in means}, key=str
        )
        table_rows = []
        for idx_value in idx_values:
            row = {index: idx_value}
            for metric in metrics:
                if (idx_value,) in means_by_metric[metric]:
                    row[metric] = means_by_metric[metric][(idx_value,)]
            table_rows.append(row)
        out.append(f"metric means by `{index}`:\n")
        out.append(markdown_table(table_rows, heat=True))
    else:
        table_rows = [
            {"metric": metric, "mean": _mean(values)}
            for metric in metrics
            if (
                values := [
                    float(row[metric])
                    for row in rows
                    if isinstance(row.get(metric), (int, float))
                    and not isinstance(row.get(metric), bool)
                ]
            )
        ]
        out.append("metric means:\n")
        out.append(markdown_table(table_rows, heat=True))
    return out


def render_study(store: ResultsStore, *, kind: Optional[str] = None) -> str:
    """Aggregate a store into one Markdown study summary."""
    entries = list(store.entries(kind))
    if not entries:
        where = f"{store.root}" + (f" (kind {kind!r})" if kind else "")
        raise ReproError(f"no store entries found under {where}")

    lines: List[str] = ["# Study report", ""]
    lines.append(f"Store: `{store.root}`" + (f", kind: `{kind}`" if kind else ""))
    lines.append("")
    lines.append("## Entries")
    lines.append("")
    lines.append(
        markdown_table(
            [
                {
                    "kind": entry.kind,
                    "label": entry.label,
                    "rows": len(entry.rows),
                    "version": str(entry.provenance.get("repro_version", "")),
                }
                for entry in entries
            ]
        )
    )

    for entry in entries:
        lines.append(f"## {entry.kind}/{entry.label}")
        lines.append("")
        for block in _entry_tables(entry):
            lines.append(block)

    # Phase-time splits from the telemetry provenance of every entry.
    phase_rows: List[Dict[str, Any]] = []
    fleet_rows: List[Dict[str, Any]] = []
    for entry in entries:
        telemetry = entry.provenance.get("telemetry") or {}
        phases = telemetry.get("phases") or {}
        if phases:
            row: Dict[str, Any] = {"entry": f"{entry.kind}/{entry.label}"}
            for name, block in phases.items():
                row[name] = float(block.get("seconds", 0.0))
            phase_rows.append(row)
        counters = dict(telemetry.get("counters") or {})
        gauges = dict(telemetry.get("gauges") or {})
        if counters or gauges:
            fleet_rows.append(
                {"entry": f"{entry.kind}/{entry.label}", **counters, **gauges}
            )

    lines.append("## Phase-time splits")
    lines.append("")
    if phase_rows:
        lines.append(markdown_table(phase_rows, precision=4, heat=True))
    else:
        lines.append("(none recorded — run with telemetry enabled)\n")

    lines.append("## Fleet utilization")
    lines.append("")
    if fleet_rows:
        lines.append(markdown_table(fleet_rows))
    else:
        lines.append("(none recorded)\n")

    return "\n".join(lines)


# ---------------------------------------------------------------------------
# trace summaries
# ---------------------------------------------------------------------------


def summarize_trace(events: Sequence[Mapping[str, Any]]) -> str:
    """Condense a decoded NDJSON trace into aligned text tables."""
    if not events:
        return "(empty trace)\n"
    out: List[str] = []

    counts = Counter(str(e.get("event")) for e in events)
    out.append(
        format_table(
            [{"event": name, "count": count} for name, count in sorted(counts.items())],
            title="event counts",
        )
    )

    rounds = [e for e in events if e.get("event") == "round"]
    if rounds:
        by_mode = Counter(str(e.get("mode")) for e in rounds)
        frontier = [int(e.get("frontier", 0)) for e in rounds]
        out.append(
            format_table(
                [
                    {
                        "mode": mode,
                        "rounds": count,
                        "frontier_mean": _mean(
                            [float(e.get("frontier", 0)) for e in rounds if e.get("mode") == mode]
                        ),
                        "frontier_max": max(
                            int(e.get("frontier", 0)) for e in rounds if e.get("mode") == mode
                        ),
                    }
                    for mode, count in sorted(by_mode.items())
                ],
                title="rounds",
            )
        )
        quiescent = sum(1 for e in rounds if e.get("quiescent"))
        out.append(
            f"frontier max {max(frontier)}, quiescent rounds {quiescent}/{len(rounds)}\n"
        )

    batches = [e for e in events if e.get("event") == "batch_end"]
    chunks = [e for e in events if e.get("event") == "chunk_done"]
    if batches or chunks:
        out.append(
            format_table(
                [
                    {
                        "batches": len(batches),
                        "units": sum(int(e.get("units", 0)) for e in batches),
                        "chunks": len(chunks),
                        "seconds": sum(float(e.get("seconds", 0.0)) for e in batches),
                    }
                ],
                title="execution",
            )
        )

    dispatches = [e for e in events if e.get("event") == "dispatch"]
    if dispatches:
        losses = Counter(
            str(e.get("reason")) for e in events if e.get("event") == "worker_lost"
        )
        out.append(
            format_table(
                [
                    {
                        "dispatched": len(dispatches),
                        "redispatched": counts.get("redispatch", 0),
                        "splits": counts.get("split", 0),
                        "workers_lost": sum(losses.values()),
                        "loss_reasons": ",".join(
                            f"{k}={v}" for k, v in sorted(losses.items())
                        ) or "-",
                    }
                ],
                title="remote fabric",
            )
        )

    results = [e for e in events if e.get("event") == "chunk_result"]
    if results:
        totals: Dict[str, float] = {}
        for event in results:
            for phase, seconds in (event.get("timings") or {}).items():
                totals[phase] = totals.get(phase, 0.0) + float(seconds)
        if totals:
            out.append(
                format_table(
                    [
                        {"phase": phase, "seconds": seconds}
                        for phase, seconds in sorted(totals.items())
                    ],
                    title="worker-reported phase totals",
                )
            )

    times = [float(e.get("t", 0.0)) for e in events if isinstance(e.get("t"), (int, float))]
    pids = {e.get("pid") for e in events if e.get("pid") is not None}
    if times:
        out.append(
            f"wall span {max(times) - min(times):.3f}s across {len(pids)} process(es), "
            f"{len(events)} events\n"
        )
    return "\n".join(out)
