"""Named counters, gauges and histograms that land in store provenance.

`repro.exec.stats` answers one question — where did the wall time go —
through phase totals.  This registry generalises it: any layer can bump a
named counter (``exec.units``), set a gauge (``exec.rate_units_per_s``) or
observe a sample into a histogram (``exec.chunk_units``), and
:meth:`MetricsRegistry.as_provenance` folds the lot, plus an optional
:class:`~repro.exec.stats.StatsCollector`, into one JSON-able block that
``ResultsStore.put`` attaches to the entry's provenance.  Provenance never
participates in entry identity or row comparison, so the house
byte-identity invariant over *rows* is untouched.

Same ambient pattern as ``collect_stats``: a plain module global (worker
threads must see the registry the main thread installed) and no-op helpers
costing one global read when collection is off.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import TYPE_CHECKING, Any, Dict, Iterator, Optional

if TYPE_CHECKING:  # imported lazily: repro.exec pulls in the whole pipeline
    from repro.exec.stats import StatsCollector

__all__ = [
    "MetricsRegistry",
    "active_registry",
    "collect_metrics",
    "metric_gauge",
    "metric_inc",
    "metric_observe",
]


class MetricsRegistry:
    """Thread-safe named counters / gauges / histogram summaries."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, Dict[str, float]] = {}

    def inc(self, name: str, value: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def set_gauge(self, name: str, value: float) -> None:
        with self._lock:
            self._gauges[name] = float(value)

    def observe(self, name: str, value: float) -> None:
        value = float(value)
        with self._lock:
            hist = self._histograms.get(name)
            if hist is None:
                self._histograms[name] = {
                    "count": 1,
                    "total": value,
                    "min": value,
                    "max": value,
                }
            else:
                hist["count"] += 1
                hist["total"] += value
                hist["min"] = min(hist["min"], value)
                hist["max"] = max(hist["max"], value)

    def counter(self, name: str) -> int:
        return self._counters.get(name, 0)

    def gauge(self, name: str) -> Optional[float]:
        return self._gauges.get(name)

    def histogram(self, name: str) -> Optional[Dict[str, float]]:
        hist = self._histograms.get(name)
        return dict(hist) if hist is not None else None

    def as_provenance(self, stats: Optional["StatsCollector"] = None) -> Dict[str, Any]:
        """One JSON-able telemetry block; empty sections are omitted."""
        block: Dict[str, Any] = {}
        if stats is not None:
            phases = {
                name: {"seconds": round(seconds, 4), "events": stats.events(name)}
                for name, seconds in sorted(stats.as_dict().items())
            }
            if phases:
                block["phases"] = phases
        with self._lock:
            if self._counters:
                block["counters"] = dict(sorted(self._counters.items()))
            if self._gauges:
                block["gauges"] = {
                    name: round(value, 6)
                    for name, value in sorted(self._gauges.items())
                }
            if self._histograms:
                block["histograms"] = {
                    name: {
                        "count": int(hist["count"]),
                        "total": round(hist["total"], 6),
                        "min": round(hist["min"], 6),
                        "max": round(hist["max"], 6),
                        "mean": round(hist["total"] / hist["count"], 6),
                    }
                    for name, hist in sorted(self._histograms.items())
                }
        return block


#: The active registry (None = collection disabled).  Plain global for the
#: same reason as ``repro.exec.stats._ACTIVE``.
_ACTIVE: Optional[MetricsRegistry] = None


def active_registry() -> Optional[MetricsRegistry]:
    return _ACTIVE


@contextmanager
def collect_metrics() -> Iterator[MetricsRegistry]:
    """Install a registry for the duration of the block and yield it."""
    global _ACTIVE
    registry = MetricsRegistry()
    previous = _ACTIVE
    _ACTIVE = registry
    try:
        yield registry
    finally:
        _ACTIVE = previous


def metric_inc(name: str, value: int = 1) -> None:
    registry = _ACTIVE
    if registry is not None:
        registry.inc(name, value)


def metric_gauge(name: str, value: float) -> None:
    registry = _ACTIVE
    if registry is not None:
        registry.set_gauge(name, value)


def metric_observe(name: str, value: float) -> None:
    registry = _ACTIVE
    if registry is not None:
        registry.observe(name, value)
