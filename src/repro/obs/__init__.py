"""Observability: structured tracing, run telemetry, store-backed reporting.

Only the stdlib-dependency layers (:mod:`repro.obs.trace`,
:mod:`repro.obs.metrics`) are re-exported here — the simulator and the
exec runner import this package, so pulling in :mod:`repro.obs.report`
(which reads the scenarios store) would create an import cycle.  Consumers
of the report renderer import it directly.
"""

from repro.obs.metrics import (
    MetricsRegistry,
    active_registry,
    collect_metrics,
    metric_gauge,
    metric_inc,
    metric_observe,
)
from repro.obs.trace import (
    EVENT_SCHEMA,
    SCHEMA_VERSION,
    TRACE_ENV,
    TelemetryConfig,
    TraceSink,
    active_sink,
    emit,
    read_trace,
    refresh_from_env,
    telemetry_from_mapping,
    trace_to,
    validate_event,
    validate_trace,
)

__all__ = [
    "EVENT_SCHEMA",
    "SCHEMA_VERSION",
    "TRACE_ENV",
    "MetricsRegistry",
    "TelemetryConfig",
    "TraceSink",
    "active_registry",
    "active_sink",
    "collect_metrics",
    "emit",
    "metric_gauge",
    "metric_inc",
    "metric_observe",
    "read_trace",
    "refresh_from_env",
    "telemetry_from_mapping",
    "trace_to",
    "validate_event",
    "validate_trace",
]
