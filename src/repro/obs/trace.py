"""Structured NDJSON tracing: the when/where of a run, not just the end row.

The store records *outcomes*; this module records *events* — round
lifecycle from the simulator and the array kernel, chunk lifecycle from the
runner, dispatch/heartbeat/re-dispatch decisions from the remote fabric.
Each event is one JSON line (sorted keys, compact separators) with a
monotonic per-sink sequence number, the emitting pid, and a wall-clock
timestamp, so traces from several processes appending to the same file can
be interleaved and re-ordered afterwards.

The house invariant holds: tracing never touches RNG state, iteration
order, or any value that lands in a store row — store entries are
byte-identical with tracing on or off.  When no sink is active,
:func:`emit` costs one global read plus (once per process) one environment
probe, so steady-state sweeps pay nothing.

Enablement, in precedence order:

1. ``trace_to(path)`` — installed by the CLI ``--trace`` flag or a config's
   ``"telemetry"`` block; truncates ``path``.
2. ``REPRO_TRACE=path`` in the environment — probed lazily once per
   process; opens ``path`` in *append* mode so pooled/remote worker
   processes inheriting the variable interleave into one file.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterator, List, Mapping, Optional

from repro.errors import ConfigurationError

__all__ = [
    "EVENT_SCHEMA",
    "SCHEMA_VERSION",
    "TRACE_ENV",
    "TelemetryConfig",
    "TraceSink",
    "active_sink",
    "emit",
    "read_trace",
    "refresh_from_env",
    "telemetry_from_mapping",
    "trace_to",
    "validate_event",
    "validate_trace",
]

TRACE_ENV = "REPRO_TRACE"
SCHEMA_VERSION = "repro-trace/1"

#: Required fields (name -> type) per event, beyond the common envelope
#: ``{event: str, seq: int, pid: int, t: float}``.  Extra fields are
#: allowed — the schema is a floor, not a ceiling.
EVENT_SCHEMA: Dict[str, Dict[str, type]] = {
    # simulator / kernel round lifecycle
    "round": {
        "round": int,
        "mode": str,
        "awake": int,
        "edges": int,
        "composed": int,
        "frontier": int,
        "changed": int,
        "quiescent": bool,
    },
    # scenario executor unit lifecycle
    "unit_begin": {"label": str, "seed": int, "algorithm": str, "adversary": str},
    "unit_end": {"seed": int, "rounds": int, "delivery": str},
    # exec runner batch/chunk lifecycle
    "batch_begin": {
        "label": str,
        "units": int,
        "restored": int,
        "backend": str,
        "workers": int,
        "chunks": int,
    },
    "batch_end": {"label": str, "units": int, "seconds": float},
    "journal_restore": {"restored": int},
    "chunk_done": {"chunk": int, "units": int},
    "serial_fallback": {"error": str, "chunks_left": int},
    # remote dispatcher decisions
    "dispatch": {"task": int, "chunk": int, "units": int, "worker": str, "attempt": int},
    "redispatch": {"task": int, "chunk": int, "attempt": int, "backoff": float},
    "worker_lost": {"worker": str, "reason": str, "inflight": int},
    "split": {"chunk": int, "pieces": int, "per_piece": int},
    "ping": {"worker": str},
    "chunk_result": {
        "task": int,
        "chunk": int,
        "worker": str,
        "units": int,
        "seconds": float,
        "timings": dict,
    },
}

_ENVELOPE: Dict[str, type] = {"event": str, "seq": int, "pid": int, "t": float}


def _jsonable(value: Any) -> Any:
    """Best-effort converter for numpy scalars and other ``.item()`` types."""
    item = getattr(value, "item", None)
    if callable(item):
        return item()
    raise TypeError(f"trace event field is not JSON-serialisable: {value!r}")


class TraceSink:
    """A thread-safe NDJSON event writer bound to one file handle.

    Every :meth:`emit` writes one line and flushes, so a killed process
    loses at most the line being written — the same torn-line tolerance
    the exec journal already has.
    """

    def __init__(self, path: "str | Path", append: bool = False) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = self.path.open("a" if append else "w", encoding="utf-8")
        self._lock = threading.Lock()
        self._seq = 0

    def emit(self, event: str, **fields: Any) -> None:
        # pid is looked up per event, not cached: fork-started pool workers
        # inherit the parent's sink object, and a cached pid would mislabel
        # every worker-side event as the parent's.
        record = {"event": event, "t": round(time.time(), 6), "pid": os.getpid()}
        record.update(fields)
        with self._lock:
            record["seq"] = self._seq
            self._seq += 1
            line = json.dumps(
                record, sort_keys=True, separators=(",", ":"), default=_jsonable
            )
            self._handle.write(line + "\n")
            self._handle.flush()

    def close(self) -> None:
        with self._lock:
            if not self._handle.closed:
                self._handle.close()


#: Explicitly installed sink (``trace_to`` / the CLI flag): wins over env.
_OVERRIDE: Optional[TraceSink] = None
#: Env-derived sink, probed lazily exactly once per process.
_ENV_SINK: Optional[TraceSink] = None
_ENV_PROBED = False


def active_sink() -> Optional[TraceSink]:
    """The sink events should go to, or ``None`` when tracing is off."""
    if _OVERRIDE is not None:
        return _OVERRIDE
    global _ENV_PROBED, _ENV_SINK
    if not _ENV_PROBED:
        _ENV_PROBED = True
        path = os.environ.get(TRACE_ENV)
        if path:
            _ENV_SINK = TraceSink(path, append=True)
    return _ENV_SINK


def emit(event: str, **fields: Any) -> None:
    """Emit ``event`` to the active sink; no-op when tracing is off."""
    sink = active_sink()
    if sink is not None:
        sink.emit(event, **fields)


@contextmanager
def trace_to(path: "str | Path") -> Iterator[TraceSink]:
    """Install a truncating sink on ``path`` for the duration of the block."""
    global _OVERRIDE
    sink = TraceSink(path, append=False)
    previous = _OVERRIDE
    _OVERRIDE = sink
    try:
        yield sink
    finally:
        _OVERRIDE = previous
        sink.close()


def refresh_from_env() -> None:
    """Drop the cached env probe (tests that set/unset ``REPRO_TRACE``)."""
    global _ENV_PROBED, _ENV_SINK
    if _ENV_SINK is not None:
        _ENV_SINK.close()
    _ENV_SINK = None
    _ENV_PROBED = False


# ---------------------------------------------------------------------------
# validation / reading
# ---------------------------------------------------------------------------


def _ok(value: Any, ftype: type) -> bool:
    if ftype in (int, float) and isinstance(value, bool):
        return False  # bool is an int subclass; reject it for numeric fields
    if ftype is float:
        return isinstance(value, (int, float))
    return isinstance(value, ftype)


def validate_event(record: Mapping[str, Any]) -> List[str]:
    """Problems with one decoded event record (empty list = valid)."""
    problems: List[str] = []
    for name, ftype in _ENVELOPE.items():
        if name not in record:
            problems.append(f"missing field {name!r}")
        elif not _ok(record[name], ftype):
            problems.append(f"field {name!r} is not {ftype.__name__}")
    event = record.get("event")
    if not isinstance(event, str):
        return problems
    schema = EVENT_SCHEMA.get(event)
    if schema is None:
        problems.append(f"unknown event {event!r}")
        return problems
    for name, ftype in schema.items():
        if name not in record:
            problems.append(f"{event}: missing field {name!r}")
        elif not _ok(record[name], ftype):
            problems.append(f"{event}: field {name!r} is not {ftype.__name__}")
    return problems


def read_trace(path: "str | Path") -> List[Dict[str, Any]]:
    """Decode every line of an NDJSON trace (strict: bad JSON raises)."""
    events: List[Dict[str, Any]] = []
    with Path(path).open("r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise ConfigurationError(f"{path}:{lineno}: invalid trace line: {exc}")
    return events


def validate_trace(path: "str | Path") -> List[str]:
    """Line-numbered schema problems for a whole trace file (tolerant)."""
    problems: List[str] = []
    with Path(path).open("r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                problems.append(f"line {lineno}: invalid JSON ({exc.msg})")
                continue
            if not isinstance(record, dict):
                problems.append(f"line {lineno}: not a JSON object")
                continue
            for problem in validate_event(record):
                problems.append(f"line {lineno}: {problem}")
    return problems


# ---------------------------------------------------------------------------
# the config "telemetry" block
# ---------------------------------------------------------------------------

_TELEMETRY_KEYS = {"trace"}


@dataclass(frozen=True)
class TelemetryConfig:
    """Parsed form of a config file's ``"telemetry"`` block."""

    trace: Optional[str] = None


def telemetry_from_mapping(
    data: Mapping[str, Any], *, where: str = "telemetry"
) -> TelemetryConfig:
    """Validate and parse a ``"telemetry"`` mapping from a config file."""
    unknown = sorted(set(data) - _TELEMETRY_KEYS)
    if unknown:
        raise ConfigurationError(f"{where}: unknown keys: {', '.join(unknown)}")
    trace = data.get("trace")
    if trace is not None:
        if not isinstance(trace, str) or not trace:
            raise ConfigurationError(f"{where}: 'trace' must be a non-empty string path")
    return TelemetryConfig(trace=trace)
