"""Version information for the :mod:`repro` package."""

__version__ = "1.0.0"

#: Paper reproduced by this package.
PAPER_TITLE = "Local Distributed Algorithms in Highly Dynamic Networks"
PAPER_AUTHORS = ("Philipp Bamberger", "Fabian Kuhn", "Yannic Maus")
PAPER_ARXIV = "1802.10199v3"
PAPER_VENUE = "IPDPS 2019"
