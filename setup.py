"""Legacy setup shim.

The project metadata lives in ``pyproject.toml``; this file exists only so
that ``pip install -e .`` works in fully offline environments whose setuptools
lacks the ``wheel`` package required for PEP 660 editable installs (pip then
falls back to ``setup.py develop``).
"""

from setuptools import setup

setup()
