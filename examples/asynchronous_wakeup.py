#!/usr/bin/env python3
"""Asynchronous wake-up: sensor nodes joining a network over time.

Section 2 of the paper models gradual deployment by a growing awake-node set
``V_r``; Section 7.2 stresses that all presented algorithms use a single round
type precisely so that late-waking nodes can simply start executing without a
global clock.  This example deploys a sensor field in batches — declared as a
``staggered`` wake-up component on the scenario spec — lets the links churn
mildly, and runs both combined algorithms:

* ``dynamic-coloring`` — slot assignment for the sensors' TDMA schedule;
* ``dynamic-matching`` — pairing sensors for mutual health-checks (the §7.1
  recipe extension).

For each it reports the sliding-window validity and when the last-deployed
batch converged to a stable output (the ``last-wakers-convergence`` metric).

Run with::

    python examples/asynchronous_wakeup.py [n] [rounds]
"""

from __future__ import annotations

import sys

from repro import ScenarioSpec, component, run_scenario
from repro.analysis.report import format_table


def main(n: int = 96, rounds: int | None = None, seed: int = 3) -> int:
    base = ScenarioSpec(
        n=n,
        topology=component("random_geometric", radius=0.2),
        adversary=component("flip-churn", flip_prob=0.01),
        wakeup=component("staggered", batch_size=8, interval=3),
        algorithm="dynamic-coloring",
        rounds=rounds if rounds is not None else "6*T1",
        seeds=(seed,),
    )

    rows = []
    for label, algorithm, problem in (
        ("dynamic-coloring (TDMA slots)", "dynamic-coloring", "coloring"),
        ("dynamic-matching (health-check pairs)", "dynamic-matching", "matching"),
    ):
        spec = base.replace(
            name=label,
            algorithm=component(algorithm),
            metrics=(
                component("validity", problem=problem),
                component("last-wakers-convergence", tail=8),
            ),
        )
        row = run_scenario(spec).rows[0]
        rows.append(
            {
                "algorithm": label,
                "valid_fraction": row["valid_fraction"],
                "last_batch_wake_round": row["last_batch_wake_round"],
                "last_batch_decided_round": row["last_batch_decided_round"],
                "rounds_to_decide_after_wake": row["rounds_to_decide_after_wake"],
            }
        )

    print(f"staggered deployment of {n} sensors (8 per batch, every 3 rounds), "
          f"window T1={base.resolved_window()}, {base.resolved_rounds()} rounds\n")
    print(format_table(rows, title="guarantees under asynchronous wake-up"))
    print("Nodes awake for fewer than T1 rounds are unconstrained by the sliding-window\n"
          "definition (Definition 2.1), which is why validity stays at 1 even while batches join.")
    return 0


if __name__ == "__main__":
    args = [int(a) for a in sys.argv[1:3]]
    raise SystemExit(main(*args))
