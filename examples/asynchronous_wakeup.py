#!/usr/bin/env python3
"""Asynchronous wake-up: sensor nodes joining a network over time.

Section 2 of the paper models gradual deployment by a growing awake-node set
``V_r``; Section 7.2 stresses that all presented algorithms use a single round
type precisely so that late-waking nodes can simply start executing without a
global clock.  This example deploys a sensor field in batches (a new batch
powers on every few rounds), lets the links churn mildly, and runs both
combined algorithms:

* ``DynamicColoring`` — slot assignment for the sensors' TDMA schedule;
* ``DynamicMatching`` — pairing sensors for mutual health-checks (the §7.1
  recipe extension).

For each it reports the sliding-window validity and when the last-deployed
batch converged to a stable output.

Run with::

    python examples/asynchronous_wakeup.py [n] [rounds]
"""

from __future__ import annotations

import sys

from repro import RngFactory, run_simulation
from repro.dynamics import generators
from repro.dynamics.adversaries import ChurnAdversary
from repro.dynamics.churn import FlipChurn
from repro.dynamics.wakeup import StaggeredWakeup
from repro.algorithms.coloring import dynamic_coloring
from repro.algorithms.matching import dynamic_matching
from repro.problems import TDynamicSpec, coloring_problem_pair, matching_problem_pair
from repro.analysis.convergence import completion_round_for_nodes
from repro.analysis.report import format_table


def run_one(label, algorithm, pair, n, rounds, wakeup, seed):
    rng = RngFactory(seed)
    base = generators.random_geometric(n, 0.2, rng.stream("field"))
    adversary = ChurnAdversary(n, FlipChurn(base, 0.01), rng.stream("adversary"), wakeup=wakeup)
    trace = run_simulation(n=n, algorithm=algorithm, adversary=adversary, rounds=rounds, seed=seed)

    validity = TDynamicSpec(pair, algorithm.T1).validity_summary(trace)
    last_batch = list(range(n - 8, n))  # the nodes that woke up last
    last_batch_wake = max(
        next(r for r in trace.rounds() if v in trace.topology(r).nodes) for v in last_batch
    )
    converged = completion_round_for_nodes(trace, last_batch, start_round=last_batch_wake)
    return {
        "algorithm": label,
        "valid_fraction": validity["valid_fraction"],
        "last_batch_wake_round": float(last_batch_wake),
        "last_batch_decided_round": float(converged) if converged is not None else float("nan"),
        "rounds_to_decide_after_wake": float(converged - last_batch_wake) if converged else float("nan"),
    }


def main(n: int = 96, rounds: int | None = None, seed: int = 3) -> int:
    coloring = dynamic_coloring(n)
    matching = dynamic_matching(n)
    total_rounds = rounds if rounds is not None else 6 * coloring.T1
    wakeup = StaggeredWakeup(n, batch_size=8, interval=3)

    rows = [
        run_one("dynamic-coloring (TDMA slots)", coloring, coloring_problem_pair(), n, total_rounds, wakeup, seed),
        run_one("dynamic-matching (health-check pairs)", matching, matching_problem_pair(), n, total_rounds, wakeup, seed),
    ]

    print(f"staggered deployment of {n} sensors (8 per batch, every 3 rounds), "
          f"window T1={coloring.T1}, {total_rounds} rounds\n")
    print(format_table(rows, title="guarantees under asynchronous wake-up"))
    print("Nodes awake for fewer than T1 rounds are unconstrained by the sliding-window\n"
          "definition (Definition 2.1), which is why validity stays at 1 even while batches join.")
    return 0


if __name__ == "__main__":
    args = [int(a) for a in sys.argv[1:3]]
    raise SystemExit(main(*args))
