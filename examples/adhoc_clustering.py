#!/usr/bin/env python3
"""Cluster-head selection in a peer-to-peer overlay with continuous churn.

The paper motivates MIS as a way to select management/monitoring nodes
(cluster heads) in dynamic networks: heads must never be adjacent (they would
interfere / duplicate work) and every other node must have a head in its
neighbourhood to attach to.

The scenario runs the combined ``dynamic-mis = Concat(SMis, DMis)`` on an
overlay whose links appear and disappear with an asymmetric Markov churn
(links fail fast, recover slowly) and compares it against the recovery-style
``restart-mis`` baseline — the comparison is a one-line
``algorithm.name`` sweep over the declarative spec.

The example also demonstrates the registry extension point: the
"cluster-heads" metric below is registered with the standard
``@METRICS.register`` decorator and then referenced by name like any built-in
component.  Reported per algorithm:

* the fraction of rounds with a valid sliding-window MIS,
* the average number of cluster heads, and
* how often nodes changed role (head / member) — the operational churn a
  deployment would actually pay for.

Run with::

    python examples/adhoc_clustering.py [n] [rounds]
"""

from __future__ import annotations

import sys

from repro import ScenarioSpec, component, sweep
from repro.analysis.report import format_table
from repro.scenarios import METRICS


@METRICS.register("cluster-heads")
def _cluster_heads(ctx, *, warmup="2*T1"):
    """Average number of MIS nodes (output == 1) per round after warm-up."""
    start = ctx.resolve(warmup)
    trace = ctx.trace
    heads = [
        sum(1 for value in trace.outputs(r).values() if value == 1)
        for r in range(start, trace.num_rounds + 1)
    ]
    return {"mean_cluster_heads": sum(heads) / len(heads) if heads else float("nan")}


def main(n: int = 120, rounds: int | None = None, seed: int = 11) -> int:
    spec = ScenarioSpec(
        name="adhoc-clustering",
        n=n,
        topology=component("barabasi_albert", m=3),
        adversary=component("markov-churn", p_off=0.04, p_on=0.01),
        algorithm="dynamic-mis",
        rounds=rounds if rounds is not None else "5*T1",
        seeds=(seed,),
        metrics=(
            component("validity", problem="mis"),
            component("stability", warmup="2*T1"),
            component("cluster-heads", warmup="2*T1"),
        ),
    )

    rows = []
    for point in sweep(spec, over={"algorithm.name": ["dynamic-mis", "restart-mis"]}):
        row = point.rows[0]
        label = {
            "dynamic-mis": "dynamic-mis (framework)",
            "restart-mis": "restart-mis (recovery baseline)",
        }[point.overrides["algorithm.name"]]
        rows.append(
            {
                "algorithm": label,
                "valid_fraction": row["valid_fraction"],
                "mean_cluster_heads": row["mean_cluster_heads"],
                "role_changes_per_round": row["mean_changes"],
                "role_change_rate": row["change_rate"],
            }
        )

    print(f"cluster-head selection on an n={n} overlay with asymmetric link churn, "
          f"window T1={spec.resolved_window()}, {spec.resolved_rounds()} rounds\n")
    print(format_table(rows, title="framework vs recovery baseline"))
    print("Expected shape: the framework keeps validity ≈ 1 with role changes close to the\n"
          "churn-induced minimum, while the restart baseline periodically re-elects every head.")
    return 0


if __name__ == "__main__":
    args = [int(a) for a in sys.argv[1:3]]
    raise SystemExit(main(*args))
