#!/usr/bin/env python3
"""Cluster-head selection in a peer-to-peer overlay with continuous churn.

The paper motivates MIS as a way to select management/monitoring nodes
(cluster heads) in dynamic networks: heads must never be adjacent (they would
interfere / duplicate work) and every other node must have a head in its
neighbourhood to attach to.

The script runs the combined ``DynamicMIS = Concat(SMis, DMis)`` on an overlay
whose links appear and disappear with an asymmetric Markov churn (links fail
fast, recover slowly), and compares it against the recovery-style
``RestartMis`` baseline, reporting:

* the fraction of rounds with a valid sliding-window MIS,
* the average number of cluster heads, and
* how often nodes changed role (head / member) — the operational churn a
  deployment would actually pay for.

Run with::

    python examples/adhoc_clustering.py [n] [rounds]
"""

from __future__ import annotations

import sys

from repro import RngFactory, run_simulation
from repro.dynamics import generators
from repro.dynamics.adversaries import ChurnAdversary
from repro.dynamics.churn import MarkovEdgeChurn
from repro.algorithms.mis import RestartMis, dynamic_mis
from repro.problems import TDynamicSpec, mis_problem_pair
from repro.analysis.report import format_table
from repro.analysis.stability import stability_summary


def run_one(label, algorithm, n, rounds, window, seed):
    rng = RngFactory(seed)
    base = generators.barabasi_albert(n, 3, rng.stream("overlay"))
    churn = MarkovEdgeChurn(base, p_off=0.04, p_on=0.01)
    adversary = ChurnAdversary(n, churn, rng.stream("adversary"))
    trace = run_simulation(n=n, algorithm=algorithm, adversary=adversary, rounds=rounds, seed=seed)

    validity = TDynamicSpec(mis_problem_pair(), window).validity_summary(trace)
    stability = stability_summary(trace, warmup=2 * window)
    heads = [
        sum(1 for value in trace.outputs(r).values() if value == 1)
        for r in range(2 * window, trace.num_rounds + 1)
    ]
    return {
        "algorithm": label,
        "valid_fraction": validity["valid_fraction"],
        "mean_cluster_heads": sum(heads) / len(heads),
        "role_changes_per_round": stability["mean_changes"],
        "role_change_rate": stability["change_rate"],
    }


def main(n: int = 120, rounds: int | None = None, seed: int = 11) -> int:
    combined = dynamic_mis(n)
    window = combined.T1
    total_rounds = rounds if rounds is not None else 5 * window

    rows = [
        run_one("dynamic-mis (framework)", combined, n, total_rounds, window, seed),
        run_one("restart-mis (recovery baseline)", RestartMis(window), n, total_rounds, window, seed),
    ]

    print(f"cluster-head selection on an n={n} overlay with asymmetric link churn, "
          f"window T1={window}, {total_rounds} rounds\n")
    print(format_table(rows, title="framework vs recovery baseline"))
    print("Expected shape: the framework keeps validity ≈ 1 with role changes close to the\n"
          "churn-induced minimum, while the restart baseline periodically re-elects every head.")
    return 0


if __name__ == "__main__":
    args = [int(a) for a in sys.argv[1:3]]
    raise SystemExit(main(*args))
