#!/usr/bin/env python3
"""Quickstart: the declarative scenario API on a churning network.

A scenario is *data*: a :class:`repro.ScenarioSpec` naming a topology family,
an adversary, an algorithm and the metrics to extract — all resolved through
the ``repro.scenarios`` registries.  This script

1. declares the paper's flagship workload (sparse random network, 1% edge
   flip churn, the combined ``DynamicColoring = Concat(SColor, DColor)``),
2. runs it over three seeds with :func:`repro.run_scenario` (the seed
   replications fan out across cores with ``parallel=True``),
3. sweeps the churn rate with :func:`repro.sweep` to show that the
   sliding-window guarantee is churn-rate independent, and
4. prints the spec's JSON form — the exact artefact you would commit to a
   config file or ship to a worker fleet.

Run with::

    python examples/quickstart.py [n] [rounds]
"""

from __future__ import annotations

import sys

from repro import ScenarioSpec, component, run_scenario, sweep
from repro.analysis.report import format_table


def main(n: int = 96, rounds: int | None = None, seed: int = 1) -> int:
    spec = ScenarioSpec(
        name="quickstart-coloring",
        n=n,
        topology=component("gnp_degree", degree=8.0),
        adversary=component("flip-churn", flip_prob=0.01),
        algorithm="dynamic-coloring",
        rounds=rounds if rounds is not None else "4*T1",
        seeds=(seed, seed + 1, seed + 2),
        metrics=(
            component("validity", problem="coloring"),
            component("stability", warmup="2*T1"),
            component("coloring-quality", graph="union"),
        ),
    )

    print(f"scenario (n={n}, window T1={spec.resolved_window()}, "
          f"{spec.resolved_rounds()} rounds, seeds {spec.seeds}):\n")
    print(spec.to_json(indent=2))
    print()

    # One scenario, three seeds, all cores.
    result = run_scenario(spec, parallel=True)
    print(format_table(
        list(result.rows),
        title="per-seed rows (validity · stability · colouring quality)",
        columns=("valid_fraction", "mean_violations", "mean_changes", "change_rate",
                 "max_color", "colors_used"),
    ))
    aggregate = result.aggregate(
        mean_keys=("valid_fraction", "mean_changes", "max_color", "colors_used"),
    )
    print(format_table([aggregate], title="aggregated over seeds"))

    # The paper's claim is churn-rate independent — sweep the flip probability.
    grid = sweep(spec, over={"adversary.params.flip_prob": [0.001, 0.01, 0.05]}, parallel=True)
    sweep_rows = [
        {"flip_prob": point.overrides["adversary.params.flip_prob"]}
        | point.aggregate(mean_keys=("valid_fraction", "mean_changes"))
        for point in grid
    ]
    print(format_table(sweep_rows, title="churn-rate sweep (claim: valid every round regardless)"))

    return 0 if result.mean("valid_fraction") == 1.0 else 1


if __name__ == "__main__":
    args = [int(a) for a in sys.argv[1:3]]
    raise SystemExit(main(*args))
