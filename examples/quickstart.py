#!/usr/bin/env python3
"""Quickstart: run the combined dynamic colouring algorithm on a churning network.

The script builds a sparse random network of ``n`` nodes, animates it with a
per-edge flip churn (1% per round), runs the paper's combined algorithm
``DynamicColoring = Concat(SColor, DColor)`` for a few windows, and then
checks — using the library's own trace checker — that every round's output was
a valid T-dynamic solution: a proper colouring of the window's intersection
graph using colours within every node's union-degree + 1.

Run with::

    python examples/quickstart.py [n] [rounds]
"""

from __future__ import annotations

import sys

from repro import RngFactory, run_simulation
from repro.dynamics import generators
from repro.dynamics.adversaries import ChurnAdversary
from repro.dynamics.churn import FlipChurn
from repro.algorithms.coloring import dynamic_coloring
from repro.problems import TDynamicSpec, coloring_problem_pair
from repro.analysis.quality import coloring_quality
from repro.analysis.report import format_table
from repro.analysis.stability import stability_summary


def main(n: int = 96, rounds: int | None = None, seed: int = 1) -> int:
    rng = RngFactory(seed)

    # 1. A base topology and an oblivious churn adversary animating it.
    base = generators.gnp(n, 8.0 / (n - 1), rng.stream("topology"))
    adversary = ChurnAdversary(n, FlipChurn(base, flip_prob=0.01), rng.stream("adversary"))

    # 2. The combined algorithm of Corollary 1.2 with the default Θ(log n) window.
    algorithm = dynamic_coloring(n)
    total_rounds = rounds if rounds is not None else 4 * algorithm.T1

    # 3. Simulate.
    trace = run_simulation(
        n=n, algorithm=algorithm, adversary=adversary, rounds=total_rounds, seed=seed
    )

    # 4. Verify the sliding-window guarantee and summarise the run.
    spec = TDynamicSpec(coloring_problem_pair(), algorithm.T1)
    validity = spec.validity_summary(trace)
    stability = stability_summary(trace, warmup=2 * algorithm.T1)
    quality = coloring_quality(
        trace.graph.union_graph(trace.num_rounds, algorithm.T1),
        trace.outputs(trace.num_rounds),
    )

    print(f"dynamic (degree+1)-colouring on n={n} nodes, window T1={algorithm.T1}, "
          f"{total_rounds} rounds of 1% edge churn\n")
    print(format_table([validity], title="T-dynamic validity (Theorem 1.1(1) / Corollary 1.2)"))
    print(format_table([stability], title=f"output stability after round {2 * algorithm.T1}"))
    print(format_table([quality], title="final colouring quality (vs union-graph degrees)"))

    return 0 if validity["valid_fraction"] == 1.0 else 1


if __name__ == "__main__":
    args = [int(a) for a in sys.argv[1:3]]
    raise SystemExit(main(*args))
