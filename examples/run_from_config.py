#!/usr/bin/env python3
"""The config pipeline as a library: load → validate → run → store → diff.

Everything the ``repro`` CLI does is plain API.  This script

1. loads the committed quickstart scenario config from ``configs/``,
2. validates it (and shows the near-miss suggestions a typo would get),
3. runs it and persists the rows in a content-addressed results store,
4. reruns it to show the store is idempotent (the entry is untouched), and
5. mutates a stored row to show how ``repro diff`` catches drift.

Run with::

    python examples/run_from_config.py [store-dir]
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from repro.analysis.report import format_table
from repro.scenarios import ResultsStore, load_config, run_scenario, validate_config
from repro.scenarios.store import diff_stores

REPO_ROOT = Path(__file__).resolve().parent.parent


def main(store_dir: str | None = None) -> int:
    config = load_config(REPO_ROOT / "configs" / "scenarios" / "quickstart-coloring.json")
    assert validate_config(config) == [], "the committed config must be clean"

    # A typo'd component name fails validation with suggestions, not a
    # lookup error buried in the executor:
    typo = config.spec.with_overrides({"algorithm.name": "dynamic-colorng"})
    from repro.scenarios import validate_spec

    for problem in validate_spec(typo):
        print("validation demo:", problem)
    print()

    workdir = Path(store_dir) if store_dir else Path(tempfile.mkdtemp(prefix="repro-store-"))
    store = ResultsStore(workdir / "reference")

    result = run_scenario(config.spec, parallel=True)
    rows = [{"seed": float(s), **row} for s, row in zip(config.spec.seeds, result.rows)]
    key = {"kind": "scenario", "spec": config.spec.to_dict()}
    entry, status = store.put("scenarios", config.label, key, rows)
    print(format_table(list(entry.rows), title=f"{config.label} [{status}: {entry.path}]"))

    # Idempotent rerun: same key, same code, same rows — file untouched.
    _, status = store.put("scenarios", config.label, key, rows)
    print(f"rerun status: {status}")

    # Drift detection: a candidate store with one mutated cell.
    candidate = ResultsStore(workdir / "candidate")
    mutated = [dict(rows[0], valid_fraction=0.0), *map(dict, rows[1:])]
    candidate.put("scenarios", config.label, key, mutated)
    diff = diff_stores(store, candidate)
    print("drift detected:" if not diff.clean else "stores match:")
    print(diff.describe())
    return 0


if __name__ == "__main__":
    sys.exit(main(*sys.argv[1:]))
