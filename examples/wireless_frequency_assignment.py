#!/usr/bin/env python3
"""Wireless frequency assignment under node mobility.

The paper's standard application of vertex colouring is assigning frequencies
(or time slots) to wireless stations so neighbouring stations never share a
channel.  In a mobile ad-hoc network the interference graph changes every
round as nodes move, so a static colouring is useless — this is exactly the
"highly dynamic" setting the framework targets.

The script simulates ``n`` stations moving in the unit square under a
random-waypoint model, connected whenever they are within radio range, and
maintains a frequency assignment with ``DynamicColoring``.  It reports

* how often the assignment was a valid T-dynamic solution (proper on every
  link that persisted through the window, frequencies within each station's
  recently-seen neighbour count + 1),
* how many distinct frequencies were in use, and
* how often stations had to switch frequency (the quantity an operator cares
  about — re-tuning a radio is expensive).

Run with::

    python examples/wireless_frequency_assignment.py [n] [rounds]
"""

from __future__ import annotations

import sys

from repro import RngFactory, run_simulation
from repro.dynamics.adversaries import MobilityAdversary
from repro.dynamics.mobility import RandomWaypointMobility
from repro.algorithms.coloring import dynamic_coloring
from repro.problems import TDynamicSpec, coloring_problem_pair
from repro.problems.coloring import num_colors_used
from repro.analysis.report import format_table
from repro.analysis.stability import stability_summary


def main(n: int = 80, rounds: int | None = None, seed: int = 7) -> int:
    rng = RngFactory(seed)

    # Stations move at 2% of the arena per round and hear each other within
    # ~1.5 average hop distances — a gently but continuously changing topology.
    mobility = RandomWaypointMobility(
        n, radius=0.18, speed=0.02, pause_probability=0.2, rng=rng.stream("mobility")
    )
    adversary = MobilityAdversary(mobility)

    algorithm = dynamic_coloring(n)
    total_rounds = rounds if rounds is not None else 5 * algorithm.T1
    trace = run_simulation(
        n=n, algorithm=algorithm, adversary=adversary, rounds=total_rounds, seed=seed
    )

    spec = TDynamicSpec(coloring_problem_pair(), algorithm.T1)
    validity = spec.validity_summary(trace)
    stability = stability_summary(trace, warmup=2 * algorithm.T1)

    per_round_frequencies = [
        num_colors_used(trace.outputs(r)) for r in range(2 * algorithm.T1, trace.num_rounds + 1)
    ]
    frequency_row = {
        "mean_frequencies_in_use": sum(per_round_frequencies) / len(per_round_frequencies),
        "max_frequencies_in_use": max(per_round_frequencies),
        "stations": float(n),
    }

    print(f"frequency assignment for {n} mobile stations, window T1={algorithm.T1}, "
          f"{total_rounds} rounds of random-waypoint mobility\n")
    print(format_table([validity], title="T-dynamic validity of the assignment"))
    print(format_table([frequency_row], title="frequencies in use (steady state)"))
    print(format_table(
        [stability],
        title="re-tuning cost: per-round frequency switches after warm-up",
    ))
    return 0


if __name__ == "__main__":
    args = [int(a) for a in sys.argv[1:3]]
    raise SystemExit(main(*args))
