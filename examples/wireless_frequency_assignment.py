#!/usr/bin/env python3
"""Wireless frequency assignment under node mobility.

The paper's standard application of vertex colouring is assigning frequencies
(or time slots) to wireless stations so neighbouring stations never share a
channel.  In a mobile ad-hoc network the interference graph changes every
round as nodes move, so a static colouring is useless — this is exactly the
"highly dynamic" setting the framework targets.

The scenario simulates ``n`` stations moving in the unit square under a
random-waypoint model (the ``mobility`` adversary component), connected
whenever they are within radio range, and maintains a frequency assignment
with ``dynamic-coloring``.  A custom ``frequencies-in-use`` metric —
registered here with the standard ``@METRICS.register`` decorator — reports

* how often the assignment was a valid T-dynamic solution (proper on every
  link that persisted through the window, frequencies within each station's
  recently-seen neighbour count + 1),
* how many distinct frequencies were in use, and
* how often stations had to switch frequency (the quantity an operator cares
  about — re-tuning a radio is expensive).

Run with::

    python examples/wireless_frequency_assignment.py [n] [rounds]
"""

from __future__ import annotations

import sys

from repro import ScenarioSpec, component, run_scenario
from repro.analysis.report import format_table
from repro.problems.coloring import num_colors_used
from repro.scenarios import METRICS


@METRICS.register("frequencies-in-use")
def _frequencies_in_use(ctx, *, warmup="2*T1"):
    """Mean / max distinct output values per round after warm-up."""
    start = ctx.resolve(warmup)
    trace = ctx.trace
    per_round = [num_colors_used(trace.outputs(r)) for r in range(start, trace.num_rounds + 1)]
    if not per_round:
        return {"mean_frequencies_in_use": float("nan"), "max_frequencies_in_use": float("nan")}
    return {
        "mean_frequencies_in_use": sum(per_round) / len(per_round),
        "max_frequencies_in_use": float(max(per_round)),
    }


def main(n: int = 80, rounds: int | None = None, seed: int = 7) -> int:
    # Stations move at 2% of the arena per round and hear each other within
    # ~1.5 average hop distances — a gently but continuously changing topology.
    spec = ScenarioSpec(
        name="wireless-frequency-assignment",
        n=n,
        adversary=component("mobility", radius=0.18, speed=0.02, pause_probability=0.2),
        algorithm="dynamic-coloring",
        rounds=rounds if rounds is not None else "5*T1",
        seeds=(seed,),
        metrics=(
            component("validity", problem="coloring"),
            component("stability", warmup="2*T1"),
            component("frequencies-in-use", warmup="2*T1"),
        ),
    )
    row = run_scenario(spec).rows[0]

    print(f"frequency assignment for {n} mobile stations, window T1={spec.resolved_window()}, "
          f"{spec.resolved_rounds()} rounds of random-waypoint mobility\n")
    print(format_table(
        [row],
        title="T-dynamic validity of the assignment",
        columns=("rounds_checked", "valid_rounds", "valid_fraction", "mean_violations"),
    ))
    print(format_table(
        [row | {"stations": float(n)}],
        title="frequencies in use (steady state)",
        columns=("mean_frequencies_in_use", "max_frequencies_in_use", "stations"),
    ))
    print(format_table(
        [row],
        title="re-tuning cost: per-round frequency switches after warm-up",
        columns=("mean_changes", "max_changes", "change_rate"),
    ))
    return 0


if __name__ == "__main__":
    args = [int(a) for a in sys.argv[1:3]]
    raise SystemExit(main(*args))
