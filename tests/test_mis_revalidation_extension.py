"""Tests for the domination-hole re-validation extension (see EXPERIMENTS.md).

The paper-faithful combined MIS algorithm admits rare one-round "domination
holes" in its backbone under edge re-insertion churn; the
``revalidate_dominated`` extension lets every DMis instance re-check dominated
*input* values in its first round.  These tests pin down (a) that the
extension changes nothing on clean inputs, and (b) that it measurably improves
T-dynamic validity under churn compared to the faithful variant.
"""

from repro.dynamics import generators
from repro.dynamics.adversaries import ChurnAdversary, StaticAdversary
from repro.dynamics.churn import FlipChurn
from repro.problems import TDynamicSpec, mis_problem_pair
from repro.problems.mis import is_maximal_independent_set
from repro.runtime.simulator import run_simulation
from repro.utils.rng import RngFactory
from repro.core import default_window
from repro.algorithms.mis import DMis, DynamicMIS, dynamic_mis


class TestRevalidateDominatedInputs:
    def test_clean_partial_input_is_preserved(self, medium_gnp):
        """With a valid partial solution as input the extension never fires."""
        n = medium_gnp.num_nodes
        seed_member = 0
        input_assignment = {seed_member: 1}
        for u in medium_gnp.neighbors(seed_member):
            input_assignment[u] = 0
        trace = run_simulation(
            n=n,
            algorithm=DMis(revalidate_dominated=True),
            adversary=StaticAdversary(medium_gnp),
            rounds=40,
            seed=1,
            input_assignment=input_assignment,
        )
        final = trace.outputs(trace.num_rounds)
        for v, value in input_assignment.items():
            assert final[v] == value
        assert is_maximal_independent_set(
            medium_gnp, {v for v, value in final.items() if value == 1}
        )

    def test_stale_dominated_input_is_dropped(self, path4):
        """A dominated input value without any dominator is re-validated away."""
        trace = run_simulation(
            n=4,
            algorithm=DMis(revalidate_dominated=True),
            adversary=StaticAdversary(path4),
            rounds=20,
            seed=2,
            input_assignment={0: 0},  # claims to be dominated but has no MIS neighbour
        )
        final = trace.outputs(trace.num_rounds)
        assert is_maximal_independent_set(path4, {v for v, value in final.items() if value == 1})

    def test_faithful_variant_keeps_stale_input(self, path4):
        """Contrast: without the extension the stale value survives (property A.1)."""
        trace = run_simulation(
            n=4,
            algorithm=DMis(),
            adversary=StaticAdversary(path4),
            rounds=20,
            seed=2,
            input_assignment={0: 0},
        )
        assert trace.outputs(trace.num_rounds)[0] == 0

    def test_extension_improves_validity_under_churn(self, medium_gnp):
        n = medium_gnp.num_nodes
        T1 = default_window(n)
        spec = TDynamicSpec(mis_problem_pair(), T1)

        def run(revalidate: bool) -> float:
            total = 0.0
            for seed in (0, 1, 2):
                base = generators.gnp(n, 0.12, RngFactory(seed).stream("base"))
                adversary = ChurnAdversary(n, FlipChurn(base, 0.05), RngFactory(seed).stream("adv"))
                algorithm = DynamicMIS(T1, revalidate_dominated=revalidate)
                trace = run_simulation(
                    n=n, algorithm=algorithm, adversary=adversary, rounds=3 * T1, seed=seed
                )
                total += spec.validity_summary(trace)["valid_fraction"]
            return total / 3

        faithful = run(False)
        extended = run(True)
        assert extended >= faithful
        assert extended >= 0.97

    def test_factory_flag(self):
        assert dynamic_mis(64, revalidate_dominated=True).revalidate_dominated
        assert not dynamic_mis(64).revalidate_dominated
