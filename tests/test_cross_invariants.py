"""Cross-cutting invariants that tie several layers together.

These tests check relationships *between* components (problem duality, window
algebra against the checker, experiment workload builders, adversary
descriptions) rather than any single module in isolation.
"""

from hypothesis import given, settings, strategies as st

from repro.dynamics import generators
from repro.dynamics.adversaries import (
    ChurnAdversary,
    LocallyStaticAdversary,
    ScriptedAdversary,
    StaticAdversary,
    TargetedColoringAdversary,
    TargetedMisAdversary,
)
from repro.dynamics.churn import FlipChurn, StaticChurn
from repro.dynamics.topology import Topology
from repro.problems import (
    TDynamicSpec,
    coloring_problem_pair,
    matching_problem_pair,
    mis_problem_pair,
    vertex_cover_problem_pair,
)
from repro.problems.mis import mis_assignment_from_set
from repro.algorithms.mis.greedy import greedy_mis
from repro.algorithms.coloring.greedy import greedy_coloring
from repro.analysis.experiments.common import base_topology, churn_adversary, log2, static_adversary
from repro.dynamics.dynamic_graph import DynamicGraph


@st.composite
def small_topologies(draw):
    n = draw(st.integers(min_value=2, max_value=10))
    possible = [(i, j) for i in range(n) for j in range(i + 1, n)]
    edges = draw(st.lists(st.sampled_from(possible), unique=True, max_size=len(possible)) if possible else st.just([]))
    return Topology(range(n), edges)


class TestProblemDuality:
    @settings(max_examples=40)
    @given(small_topologies())
    def test_mis_complement_is_minimal_vertex_cover(self, topo):
        """The complement of any MIS is a minimal vertex cover (classic duality)."""
        mis = greedy_mis(topo)
        cover_assignment = {v: (0 if v in mis else 1) for v in topo.nodes}
        assert vertex_cover_problem_pair().is_full_solution(topo, cover_assignment)

    @settings(max_examples=40)
    @given(small_topologies())
    def test_color_class_one_is_an_independent_dominating_like_set(self, topo):
        """Greedy colouring's colour class 1 is independent; it need not dominate,
        but adding it to the MIS checker's packing half must always succeed."""
        colors = greedy_coloring(topo)
        class_one = {v for v, c in colors.items() if c == 1}
        assignment = mis_assignment_from_set(topo, class_one)
        assert mis_problem_pair().packing.is_solution(topo, assignment)

    @settings(max_examples=40)
    @given(small_topologies())
    def test_dropping_dominated_values_keeps_a_partial_solution(self, topo):
        """Un-deciding *dominated* nodes of a full MIS solution keeps a partial solution.

        (Dropping MIS nodes would not: their former neighbours would become
        dominated-without-a-dominator, which is exactly what Definition 3.2's
        "for all extensions" clause rules out — see the failing variant of this
        invariant discussed in the problems-layer docstrings.)
        """
        pair = mis_problem_pair()
        assignment = dict(mis_assignment_from_set(topo, greedy_mis(topo)))
        dominated = [v for v, value in assignment.items() if value == 0]
        for v in dominated[:: 2]:
            assignment[v] = None
        assert pair.is_partial_solution(topo, assignment)


class TestWindowCheckerConsistency:
    @settings(max_examples=25)
    @given(st.lists(small_topologies(), min_size=2, max_size=5), st.integers(1, 4))
    def test_checker_windows_match_dynamic_graph_windows(self, topologies, T):
        """TDynamicSpec must evaluate exactly the Definition 2.1 window graphs."""
        n = max(max(t.nodes, default=0) for t in topologies) + 1
        graph = DynamicGraph(n)
        union_nodes = set()
        normalised = []
        for topo in topologies:
            union_nodes |= topo.nodes
            normalised.append(Topology(union_nodes, [e for e in topo.edges]))
        for topo in normalised:
            graph.append(topo)
        r = len(normalised)
        spec = TDynamicSpec(coloring_problem_pair(), T)
        intersection = graph.intersection_graph(r, T)
        # A greedy colouring of the *union* graph is proper on the intersection
        # graph too (it has fewer edges) and within every union degree + 1, so
        # the round must validate whenever all constrained nodes are coloured.
        union = graph.union_graph(r, T)
        outputs = greedy_coloring(union)
        for v in union_nodes - set(outputs):
            outputs[v] = 1
        result = spec.check_round(graph, outputs, r)
        assert result.constrained_nodes == len(intersection.nodes)
        assert result.is_valid


class TestWorkloadBuilders:
    def test_base_topology_is_seed_deterministic(self):
        assert base_topology(32, 7) == base_topology(32, 7)
        assert base_topology(32, 7) != base_topology(32, 8)

    def test_churn_adversary_modes(self):
        base = base_topology(24, 1)
        flip = churn_adversary(base, 1, flip_prob=0.1)
        markov = churn_adversary(base, 1, p_off=0.2, p_on=0.1)
        static = static_adversary(base)
        assert isinstance(flip, ChurnAdversary) and isinstance(markov, ChurnAdversary)
        assert isinstance(static, StaticAdversary)

    def test_log2_helper(self):
        assert log2(2) == 1.0
        assert log2(1) == 1.0  # clamped at n = 2
        assert log2(1024) == 10.0


class TestAdversaryDescriptions:
    def test_every_adversary_describes_itself(self, rng_factory):
        base = generators.ring(8)
        adversaries = [
            StaticAdversary(base),
            ScriptedAdversary([base]),
            ChurnAdversary(8, StaticChurn(base), rng_factory.stream("a")),
            LocallyStaticAdversary(base, 0, 1, FlipChurn(base, 0.1), rng_factory.stream("b")),
            TargetedColoringAdversary(base, 1, 2, rng_factory.stream("c")),
            TargetedMisAdversary(base, "join_mis", 1, rng_factory.stream("d")),
        ]
        descriptions = {adv.describe() for adv in adversaries}
        assert len(descriptions) == len(adversaries)
        for text in descriptions:
            assert text and isinstance(text, str)

    def test_declared_obliviousness_is_consistent(self, rng_factory):
        base = generators.ring(8)
        assert StaticAdversary(base).obliviousness > 2
        assert ChurnAdversary(8, StaticChurn(base), rng_factory.stream("a")).obliviousness > 2
        assert TargetedColoringAdversary(base, 1, 2, rng_factory.stream("c")).obliviousness == 1
        assert TargetedMisAdversary(base, "join_mis", 1, rng_factory.stream("d")).obliviousness == 1


class TestProblemPairNaming:
    def test_pair_names_are_informative(self):
        assert "independent-set" in mis_problem_pair().name
        assert "degree-plus-one" in coloring_problem_pair().name
        assert "matching" in matching_problem_pair().name
        assert "vertex-cover" in vertex_cover_problem_pair().name
