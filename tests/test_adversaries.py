"""Unit tests for the adversary framework and the concrete adversaries."""

import pytest

from repro.errors import AdversaryError, ConfigurationError
from repro.dynamics import generators
from repro.dynamics.adversary import ADAPTIVE_OFFLINE, AdversaryView, FULLY_OBLIVIOUS
from repro.dynamics.adversaries import (
    ChurnAdversary,
    FreezeAfterAdversary,
    LocallyStaticAdversary,
    PhaseAdversary,
    ScriptedAdversary,
    StaticAdversary,
    TargetedColoringAdversary,
    TargetedMisAdversary,
)
from repro.dynamics.churn import FlipChurn, StaticChurn
from repro.dynamics.topology import Topology, TopologyDelta, empty_topology
from repro.dynamics.wakeup import StaggeredWakeup


def make_view(round_index, outputs=(), topologies=(), obliviousness=FULLY_OBLIVIOUS, state=None):
    return AdversaryView(
        n=10,
        round_index=round_index,
        obliviousness=obliviousness,
        topologies=tuple(topologies),
        outputs=tuple(outputs),
        state_provider=state,
    )


def step_topology(adversary, view):
    """Drive one adversary step and materialise the result (delta or snapshot)."""
    result = adversary.step(view)
    if isinstance(result, TopologyDelta):
        previous = view.previous_topology() or empty_topology()
        return previous.apply(result)
    return result


class TestAdversaryView:
    def test_oblivious_view_hides_recent_outputs(self):
        outputs = [{0: r} for r in range(1, 6)]
        view = make_view(6, outputs=outputs, obliviousness=2)
        assert view.visible_rounds() == 4
        assert view.latest_visible_outputs() == {0: 4}

    def test_adaptive_view_sees_previous_round(self):
        outputs = [{0: 1}, {0: 2}]
        view = make_view(3, outputs=outputs, obliviousness=ADAPTIVE_OFFLINE)
        assert view.latest_visible_outputs() == {0: 2}

    def test_fully_oblivious_sees_nothing(self):
        outputs = [{0: 1}, {0: 2}]
        view = make_view(3, outputs=outputs, obliviousness=FULLY_OBLIVIOUS)
        assert view.latest_visible_outputs() is None

    def test_state_access_requires_adaptive(self):
        view = make_view(2, obliviousness=2, state=lambda: "secret")
        with pytest.raises(AdversaryError):
            view.algorithm_state()

    def test_state_access_requires_provider(self):
        view = make_view(2, obliviousness=ADAPTIVE_OFFLINE)
        with pytest.raises(AdversaryError):
            view.algorithm_state()

    def test_state_access_adaptive(self):
        view = make_view(2, obliviousness=ADAPTIVE_OFFLINE, state=lambda: {"x": 1})
        assert view.algorithm_state() == {"x": 1}

    def test_previous_topology(self):
        topo = Topology([0, 1], [(0, 1)])
        view = make_view(2, topologies=[topo])
        assert view.previous_topology() == topo
        assert make_view(1).previous_topology() is None


class TestScriptedAndStatic:
    def test_scripted_replays(self):
        topologies = [Topology([0, 1], [(0, 1)]), Topology([0, 1], [])]
        adversary = ScriptedAdversary(topologies)
        assert adversary.step(make_view(1)) == topologies[0]
        assert adversary.step(make_view(2)) == topologies[1]
        assert adversary.step(make_view(5)) == topologies[1]  # repeat_last

    def test_scripted_exhaustion_raises_without_repeat(self):
        adversary = ScriptedAdversary([Topology([0], [])], repeat_last=False)
        with pytest.raises(AdversaryError):
            adversary.step(make_view(2))

    def test_scripted_needs_topologies(self):
        with pytest.raises(AdversaryError):
            ScriptedAdversary([])

    def test_static_with_wakeup(self):
        base = generators.path(4)
        adversary = StaticAdversary(base, wakeup=StaggeredWakeup(4, batch_size=2))
        first = adversary.step(make_view(1))
        assert first.nodes == frozenset({0, 1})
        later = adversary.step(make_view(5))
        assert later == base


class TestChurnAdversary:
    def test_respects_wakeup_monotonicity(self, rng_factory):
        base = generators.ring(6)
        adversary = ChurnAdversary(
            6,
            StaticChurn(base),
            rng_factory.stream("adv"),
            wakeup=StaggeredWakeup(6, batch_size=2),
        )
        previous_nodes = frozenset()
        previous_topo = None
        for r in range(1, 6):
            view = make_view(r, topologies=[previous_topo] if previous_topo else [])
            topo = step_topology(adversary, view)
            assert previous_nodes <= topo.nodes
            previous_nodes = topo.nodes
            previous_topo = topo

    def test_edges_only_between_awake_nodes(self, rng_factory):
        base = generators.clique(6)
        adversary = ChurnAdversary(
            6, FlipChurn(base, 0.2), rng_factory.stream("adv2"), wakeup=StaggeredWakeup(6, batch_size=3)
        )
        topo = adversary.step(make_view(1))
        for u, v in topo.edges:
            assert u in topo.nodes and v in topo.nodes
        assert topo.nodes == frozenset({0, 1, 2})


class TestLocallyStaticAdversary:
    def test_protected_ball_edges_never_change(self, rng_factory):
        base = generators.gnp(30, 0.15, rng_factory.stream("ls-base"))
        center = max(base.nodes, key=base.degree)
        adversary = LocallyStaticAdversary(
            base, center=center, protected_radius=2, churn=FlipChurn(base, 0.5), rng=rng_factory.stream("ls")
        )
        protected = adversary.protected_nodes
        reference = None
        for r in range(1, 15):
            topo = adversary.step(make_view(r))
            incident = frozenset(e for e in topo.edges if e[0] in protected or e[1] in protected)
            if reference is None:
                reference = incident
            assert incident == reference

    def test_invalid_center_rejected(self, rng_factory):
        base = generators.path(4)
        with pytest.raises(ConfigurationError):
            LocallyStaticAdversary(base, center=99, protected_radius=1, churn=StaticChurn(base), rng=rng_factory.stream("x"))


class TestTargetedAdversaries:
    def test_coloring_adversary_inserts_monochromatic_edges(self, rng_factory):
        base = generators.empty(6)
        adversary = TargetedColoringAdversary(base, attacks_per_round=2, lifetime=3, rng=rng_factory.stream("t"))
        outputs = [{v: 1 for v in range(6)}]  # everyone has colour 1
        view = make_view(2, outputs=outputs, obliviousness=1)
        topo = adversary.step(view)
        assert topo.num_edges >= 1
        assert adversary.attack_log
        for _, (u, v) in adversary.attack_log:
            assert outputs[0][u] == outputs[0][v]

    def test_coloring_adversary_without_outputs_keeps_base(self, rng_factory):
        base = generators.ring(5)
        adversary = TargetedColoringAdversary(base, attacks_per_round=2, lifetime=2, rng=rng_factory.stream("t2"))
        topo = adversary.step(make_view(1, obliviousness=1))
        assert topo.edges == base.edges

    def test_mis_adversary_cut_mode(self, rng_factory):
        base = generators.star(5)
        adversary = TargetedMisAdversary(
            base, mode="cut_notification", attacks_per_round=3, rng=rng_factory.stream("t3")
        )
        outputs = [{0: 1, 1: None, 2: None, 3: None, 4: None}]
        topo = adversary.step(make_view(2, outputs=outputs, obliviousness=1))
        # All notification edges from the fresh MIS node 0 to undecided leaves are cut candidates.
        assert topo.num_edges < base.num_edges
        assert all(action == "cut" for _, action, _ in adversary.attack_log)

    def test_mis_adversary_join_mode(self, rng_factory):
        base = generators.empty(6)
        adversary = TargetedMisAdversary(base, mode="join_mis", attacks_per_round=2, rng=rng_factory.stream("t4"))
        outputs = [{v: 1 for v in range(6)}]
        topo = adversary.step(make_view(2, outputs=outputs, obliviousness=1))
        assert topo.num_edges >= 1

    def test_mis_adversary_invalid_mode(self, rng_factory):
        with pytest.raises(ConfigurationError):
            TargetedMisAdversary(generators.empty(3), mode="bogus", attacks_per_round=1, rng=rng_factory.stream("x"))


class TestCompositeAdversaries:
    def test_phase_adversary_switches(self):
        first = StaticAdversary(Topology([0, 1], [(0, 1)]))
        second = StaticAdversary(Topology([0, 1], []))
        adversary = PhaseAdversary([(2, first), (None, second)])
        assert adversary.step(make_view(1)).num_edges == 1
        assert adversary.step(make_view(2)).num_edges == 1
        assert adversary.step(make_view(3)).num_edges == 0
        assert adversary.step(make_view(99)).num_edges == 0

    def test_phase_adversary_validation(self):
        adv = StaticAdversary(Topology([0], []))
        with pytest.raises(ConfigurationError):
            PhaseAdversary([])
        with pytest.raises(ConfigurationError):
            PhaseAdversary([(None, adv), (2, adv)])

    def test_freeze_after(self, rng_factory):
        base = generators.gnp(12, 0.3, rng_factory.stream("fa"))
        inner = ChurnAdversary(12, FlipChurn(base, 0.5), rng_factory.stream("fa2"))
        adversary = FreezeAfterAdversary(inner, freeze_round=3)
        topologies = [adversary.step(make_view(r)) for r in range(1, 8)]
        assert topologies[2] == topologies[3] == topologies[6]

    def test_freeze_after_validation(self):
        with pytest.raises(ConfigurationError):
            FreezeAfterAdversary(StaticAdversary(Topology([0], [])), freeze_round=0)
