"""Unit tests for :mod:`repro.utils.rng`."""

import pytest

from repro.errors import ConfigurationError
from repro.utils.rng import RngFactory, derive_seed, spawn_generator


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(7, "a", 1) == derive_seed(7, "a", 1)

    def test_differs_by_name(self):
        assert derive_seed(7, "a") != derive_seed(7, "b")

    def test_differs_by_master_seed(self):
        assert derive_seed(7, "a") != derive_seed(8, "a")

    def test_non_negative_63_bit(self):
        seed = derive_seed(123456789, "component", 42)
        assert 0 <= seed < 2**63


class TestRngFactory:
    def test_same_stream_same_sequence(self):
        a = RngFactory(3).stream("x")
        b = RngFactory(3).stream("x")
        assert list(a.integers(0, 100, 5)) == list(b.integers(0, 100, 5))

    def test_different_streams_differ(self):
        factory = RngFactory(3)
        a = factory.stream("x").random(4).tolist()
        b = factory.stream("y").random(4).tolist()
        assert a != b

    def test_node_streams_independent(self):
        factory = RngFactory(3)
        streams = factory.node_streams("alg", range(4))
        values = {node: float(rng.random()) for node, rng in streams.items()}
        assert len(set(values.values())) == 4

    def test_node_stream_matches_node_streams(self):
        factory = RngFactory(9)
        single = factory.node_stream("alg", 2)
        multi = RngFactory(9).node_streams("alg", [2])[2]
        assert float(single.random()) == float(multi.random())

    def test_child_factories_are_independent(self):
        factory = RngFactory(5)
        child_a = factory.child("a")
        child_b = factory.child("b")
        assert float(child_a.stream("s").random()) != float(child_b.stream("s").random())

    def test_seed_property(self):
        assert RngFactory(77).seed == 77

    def test_invalid_seed_rejected(self):
        with pytest.raises(ConfigurationError):
            RngFactory("not-a-seed")  # type: ignore[arg-type]

    def test_spawn_generator_matches_factory(self):
        assert float(spawn_generator(4, "z").random()) == float(RngFactory(4).stream("z").random())
