"""The verification surface: VerificationPolicy plumbing and ``repro verify``.

Three layers under test:

* the policy object itself — parsing, the ``"verification"`` config block,
  the ambient context manager, and the deprecated ``REPRO_VERIFY_*``
  environment aliases (which must stay byte-equivalent to ``--verify``);
* the executor integration — the in-run gate fires on the verified path and
  degrades *loudly* when the requested path is unavailable;
* the contract suite — a mutation rehearsal proving a deliberately broken
  contract makes ``repro verify`` exit 1 naming the offender (a gate that
  cannot fail is not a gate).
"""

import json
import warnings
from pathlib import Path

import pytest

from repro.errors import ConfigurationError
from repro.scenarios import executor
from repro.scenarios.cli import main
from repro.scenarios.configs import load_config, validate_config
from repro.scenarios.registry import ADVERSARIES, available
from repro.scenarios.spec import ScenarioSpec, component
from repro.verify.policy import (
    VERIFY_ENV,
    VERIFY_INCREMENTAL_ENV,
    VERIFY_KERNEL_ENV,
    VerificationPolicy,
    active_verification,
    current_verification,
    parse_verify_spec,
    use_verification,
    verification_from_mapping,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
CONFIGS_DIR = REPO_ROOT / "configs"


@pytest.fixture(autouse=True)
def _clean_verification_env(monkeypatch):
    """Isolate every test from ambient policies and real environment flags."""
    for env in (VERIFY_ENV, VERIFY_INCREMENTAL_ENV, VERIFY_KERNEL_ENV):
        monkeypatch.delenv(env, raising=False)
    # The degradation warning deduplicates process-wide; reset per test.
    executor._DEGRADED_WARNED.clear()
    yield


# ---------------------------------------------------------------------------
# VerificationPolicy: parsing and the "verification" config block
# ---------------------------------------------------------------------------


class TestPolicyParsing:
    def test_spec_round_trip(self):
        assert parse_verify_spec("incremental").modes() == ("incremental",)
        assert parse_verify_spec("kernel,incremental").modes() == ("incremental", "kernel")
        assert parse_verify_spec("none") == VerificationPolicy()
        for spec in ("none", "incremental", "kernel", "incremental,kernel"):
            assert parse_verify_spec(spec).to_spec() == spec

    def test_unknown_mode_suggests_near_miss(self):
        with pytest.raises(ConfigurationError, match="did you mean.*kernel"):
            parse_verify_spec("kernal")

    def test_none_cannot_be_combined(self):
        with pytest.raises(ConfigurationError, match="'none' cannot be combined"):
            parse_verify_spec("none,kernel")

    def test_empty_spec_rejected(self):
        with pytest.raises(ConfigurationError, match="at least one"):
            parse_verify_spec(" , ")

    def test_mapping_accepts_booleans(self):
        policy = verification_from_mapping({"kernel": True})
        assert policy == VerificationPolicy(kernel=True)
        assert policy.wants("kernel") and not policy.wants("incremental")
        assert not policy.wants("full")

    def test_mapping_rejects_unknown_keys_with_suggestion(self):
        with pytest.raises(ConfigurationError, match="did you mean.*kernel"):
            verification_from_mapping({"kernels": True})

    def test_mapping_rejects_non_boolean(self):
        with pytest.raises(ConfigurationError, match="must be a boolean"):
            verification_from_mapping({"kernel": 1})

    def test_policy_rejects_non_boolean_fields(self):
        with pytest.raises(ConfigurationError, match="must be a boolean"):
            VerificationPolicy(incremental="yes")


class TestVerificationConfigBlock:
    def _write_config(self, tmp_path, verification):
        payload = {
            "kind": "scenario",
            "spec": {
                "name": "verify-block-demo",
                "n": 12,
                "adversary": {"name": "flip-churn", "params": {"flip_prob": 0.05}},
                "algorithm": {"name": "scolor", "params": {}},
                "rounds": 4,
                "seeds": [0],
            },
            "verification": verification,
        }
        path = tmp_path / "scenario.json"
        path.write_text(json.dumps(payload), encoding="utf-8")
        return path

    def test_valid_block_loads_and_validates(self, tmp_path):
        config = load_config(self._write_config(tmp_path, {"kernel": True}))
        assert config.verification == {"kernel": True}
        assert validate_config(config) == []

    def test_unknown_key_is_a_validation_problem(self, tmp_path):
        config = load_config(self._write_config(tmp_path, {"kernle": True}))
        problems = validate_config(config)
        assert problems and any("did you mean" in problem for problem in problems)

    def test_non_object_block_rejected_at_load(self, tmp_path):
        with pytest.raises(ConfigurationError, match="verification"):
            load_config(self._write_config(tmp_path, "kernel"))


# ---------------------------------------------------------------------------
# ambient policy and the deprecated environment aliases
# ---------------------------------------------------------------------------


class TestActiveVerification:
    def test_disabled_by_default(self):
        policy = active_verification()
        assert not policy.enabled and policy.modes() == ()

    def test_use_verification_wins_and_restores(self, monkeypatch):
        monkeypatch.setenv(VERIFY_ENV, "incremental")
        with use_verification(VerificationPolicy(kernel=True)) as installed:
            assert active_verification() is installed
            # The env transport carries the policy into spawned workers.
            import os

            assert os.environ[VERIFY_ENV] == "kernel"
        assert current_verification() is None
        assert active_verification() == VerificationPolicy(incremental=True)

    def test_canonical_env_parsed(self, monkeypatch):
        monkeypatch.setenv(VERIFY_ENV, "incremental,kernel")
        assert active_verification() == VerificationPolicy(incremental=True, kernel=True)

    def test_deprecated_aliases_warn_and_map(self, monkeypatch):
        monkeypatch.setenv(VERIFY_KERNEL_ENV, "1")
        with pytest.warns(DeprecationWarning, match="REPRO_VERIFY_KERNEL"):
            assert active_verification() == VerificationPolicy(kernel=True)

    def test_explicit_none_beats_aliases(self, monkeypatch):
        monkeypatch.setenv(VERIFY_KERNEL_ENV, "1")
        monkeypatch.setenv(VERIFY_ENV, "none")
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            assert not active_verification().enabled

    def test_alias_byte_equivalent_to_policy(self, monkeypatch):
        """REPRO_VERIFY_KERNEL=1 and --verify kernel run the identical gate."""
        spec = ScenarioSpec(
            n=16,
            algorithm="scolor",
            adversary=component("flip-churn", flip_prob=0.1),
            rounds=6,
            seeds=(0,),
        )
        monkeypatch.setenv(VERIFY_KERNEL_ENV, "1")
        with pytest.warns(DeprecationWarning):
            via_alias = executor.run_scenario_seed(spec, 0)
        monkeypatch.delenv(VERIFY_KERNEL_ENV)
        with use_verification(VerificationPolicy(kernel=True)):
            via_policy = executor.run_scenario_seed(spec, 0)
        assert via_alias == via_policy


class TestLoudDegradation:
    def test_unverifiable_path_warns(self):
        # dynamic-coloring has no pure contract: it executes on the full
        # path, so a kernel gate cannot run — that must be loud.
        spec = ScenarioSpec(
            n=12,
            algorithm="dynamic-coloring",
            adversary=component("flip-churn", flip_prob=0.05),
            rounds=4,
            seeds=(0,),
        )
        with use_verification(VerificationPolicy(kernel=True)):
            with pytest.warns(UserWarning, match="requested gate did not run"):
                executor.run_scenario_seed(spec, 0)

    def test_verified_path_stays_silent(self):
        spec = ScenarioSpec(
            n=12,
            algorithm="scolor",
            adversary=component("flip-churn", flip_prob=0.05),
            rounds=4,
            seeds=(0,),
        )
        with use_verification(VerificationPolicy(incremental=True, kernel=True)):
            with warnings.catch_warnings():
                warnings.simplefilter("error", UserWarning)
                executor.run_scenario_seed(spec, 0)


# ---------------------------------------------------------------------------
# the CLI flag
# ---------------------------------------------------------------------------


class TestVerifyFlag:
    def test_bad_mode_fails_with_suggestion(self, capsys):
        config = str(CONFIGS_DIR / "scenarios" / "quickstart-coloring.json")
        code = main(["run", config, "--no-store", "--verify", "kernal"])
        assert code == 1
        assert "did you mean" in capsys.readouterr().err

    def test_verify_none_runs_clean(self, capsys, tmp_path):
        payload = {
            "kind": "scenario",
            "spec": {
                "name": "tiny",
                "n": 8,
                "adversary": {"name": "static", "params": {}},
                "algorithm": {"name": "scolor", "params": {}},
                "rounds": 3,
                "seeds": [0],
            },
        }
        path = tmp_path / "tiny.json"
        path.write_text(json.dumps(payload), encoding="utf-8")
        code = main(["run", str(path), "--no-store", "--verify", "none"])
        assert code == 0


# ---------------------------------------------------------------------------
# the contract suite: discovery, committed-tree pass, mutation rehearsal
# ---------------------------------------------------------------------------


class TestContractSuite:
    def test_contracts_join_the_discovery_surface(self):
        docs = available("contracts", docs=True)
        assert "delta-vs-snapshot" in docs
        assert "manipulation-exists" in docs
        # Surfacing contract docstrings is part of the API: every contract
        # must explain itself in one line.
        assert all(doc for doc in docs.values())

    def test_manipulation_exists_passes_on_committed_configs(self):
        from repro.verify.harness import run_verify

        verdicts = run_verify(
            suite="smoke", contracts=["manipulation-exists"], configs_dir=CONFIGS_DIR
        )
        assert verdicts and all(v.status == "pass" for v in verdicts)

    def test_unknown_contract_fails_with_suggestion(self):
        from repro.verify.harness import run_verify

        with pytest.raises(Exception, match="did you mean"):
            run_verify(suite="smoke", contracts=["delta-vs-snapshots"])

    def test_unknown_suite_rejected(self):
        from repro.verify.harness import run_verify

        with pytest.raises(ConfigurationError, match="unknown verify suite"):
            run_verify(suite="smoky")

    def test_verify_store_target_is_stable(self):
        from repro.verify.harness import verify_store_target

        kind, label, key = verify_store_target("smoke")
        assert (kind, label) == ("verify", "verify-smoke")
        assert key["contracts"] is None
        assert verify_store_target("smoke", ["b", "a"])[2]["contracts"] == ["a", "b"]

    def test_cli_passes_and_stores_verdicts(self, tmp_path, capsys):
        store = tmp_path / "store"
        code = main(
            [
                "verify",
                "--suite",
                "smoke",
                "--contracts",
                "time-scaling",
                "--configs",
                str(CONFIGS_DIR),
                "--store",
                str(store),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "time-scaling" in out and "0 failed" in out
        stored = list((store / "verify").glob("*.json"))
        assert len(stored) == 1


class TestMutationRehearsal:
    """A gate that cannot fail is not a gate: break a contract, watch it fire."""

    @pytest.fixture()
    def broken_delta_adversary(self):
        from repro.dynamics.adversary import (
            Adversary,
            FULLY_OBLIVIOUS,
            default_delta_emission,
        )
        from repro.dynamics.topology import Topology

        class _BrokenDeltaAdversary(Adversary):
            """Drops one edge from round 3 on — but only on the delta path."""

            obliviousness = FULLY_OBLIVIOUS

            def __init__(self, base):
                self._base = base
                self._delta_path = default_delta_emission()

            def step(self, view):
                if self._delta_path and view.round_index >= 3:
                    edges = sorted(self._base.edges)
                    return Topology(self._base.nodes, edges[:-1])
                return self._base

            def describe(self):
                return "BrokenDeltaAdversary"

        @ADVERSARIES.register("broken-delta")
        def _build(ctx):
            """Test double whose delta path diverges from its snapshot path."""
            return _BrokenDeltaAdversary(ctx.base)

        yield "broken-delta"
        ADVERSARIES.unregister("broken-delta")

    def test_broken_contract_fails_loudly(self, broken_delta_adversary, capsys):
        code = main(["verify", "--suite", "smoke", "--contracts", "delta-vs-snapshot", "--no-store"])
        captured = capsys.readouterr()
        assert code == 1
        assert "FAIL: contract 'delta-vs-snapshot' case 'broken-delta'" in captured.err
        assert "diverges from snapshot path" in captured.err

    def test_committed_tree_passes(self, capsys):
        code = main(["verify", "--suite", "smoke", "--contracts", "delta-vs-snapshot", "--no-store"])
        assert code == 0
        assert "0 failed" in capsys.readouterr().out
