"""The quiescence-aware incremental delivery engine.

Hard gates of the incremental-delivery refactor:

* the purity contract (``message_stability`` / ``compose_fingerprint``) is
  declared on every registered algorithm, and incremental and full delivery
  produce **byte-identical trace rows for the full registered algorithm ×
  adversary matrix**;
* an algorithm that *wrongly* declares the ``"pure"`` contract is caught by
  the ``REPRO_VERIFY_INCREMENTAL=1`` debug harness;
* the engine's delta-native surface (``RoundActivity``, stored changed-node
  sets, the ``activity`` probe and ``output-activity`` metric) reports the
  real dirty set;
* the satellites: ``checkpoint_interval`` validation, the per-worker base
  topology cache, and the exec phase-timing collector.
"""

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.dynamics import generators
from repro.dynamics.adversaries.scripted import StaticAdversary
from repro.runtime.algorithm import DistributedAlgorithm, VOLATILE
from repro.runtime.simulator import DELIVERY_ENV, Simulator, delivery_mode
from repro.scenarios import ALGORITHMS, ScenarioSpec, available, component
from repro.scenarios.executor import (
    VERIFY_INCREMENTAL_ENV,
    _build_context,
    run_scenario,
    run_scenario_seed,
)

# ---------------------------------------------------------------------------
# the full algorithm × adversary equivalence matrix
# ---------------------------------------------------------------------------

#: Workable parameters for every registered adversary (small but non-trivial).
_ADVERSARY_SPECS = {
    "static": component("static"),
    "flip-churn": component("flip-churn", flip_prob=0.1),
    "markov-churn": component("markov-churn", p_off=0.05, p_on=0.05),
    "burst-churn": component("burst-churn", burst_prob=0.3, drop_fraction=0.5),
    "edge-insertion": component("edge-insertion", insertions_per_round=2, lifetime=2),
    "targeted-coloring": component("targeted-coloring", attacks_per_round=2, lifetime=4),
    "targeted-mis": component("targeted-mis", mode="cut_notification", attacks_per_round=3),
    "locally-static": component("locally-static", flip_prob=0.1, protected_radius=2),
    "freeze-after": component(
        "freeze-after", inner={"name": "flip-churn", "params": {"flip_prob": 0.2}}, freeze_round=8
    ),
    "mobility": component("mobility", radius=0.3, speed=0.05),
    "phase": component(
        "phase",
        phases=[[5, {"name": "flip-churn", "params": {"flip_prob": 0.2}}], [None, "static"]],
    ),
    "composite-churn": component(
        "composite-churn", processes=[{"kind": "flip", "flip_prob": 0.1}]
    ),
}


def _trace_rows(spec: ScenarioSpec, seed: int, mode: str):
    """Run one seed with the forced delivery mode; flatten into comparable rows."""
    with delivery_mode(mode):
        ctx = _build_context(spec, seed)
        sim = Simulator(
            n=ctx.n, algorithm=ctx.algorithm, adversary=ctx.adversary, seed=ctx.seed
        )
        sim.run(ctx.rounds)
    return [
        (
            record.round_index,
            record.topology.nodes,
            record.topology.edges,
            dict(record.outputs),
            record.metrics.as_dict(),
        )
        for record in sim.trace
    ], sim


class TestEquivalenceMatrix:
    def test_matrix_covers_every_registered_component(self):
        assert set(_ADVERSARY_SPECS) == set(available("adversaries"))

    @pytest.mark.parametrize("algorithm", sorted(available("algorithms")))
    def test_incremental_and_full_rows_identical(self, algorithm):
        """Every registered algorithm × every registered adversary: byte-identical."""
        for adversary in sorted(_ADVERSARY_SPECS):
            spec = ScenarioSpec(
                n=16,
                algorithm=algorithm,
                adversary=_ADVERSARY_SPECS[adversary],
                topology="gnp",
                rounds=12,
            )
            full_rows, _ = _trace_rows(spec, seed=7, mode="full")
            incremental_rows, _ = _trace_rows(spec, seed=7, mode="incremental")
            assert incremental_rows == full_rows, (
                f"incremental delivery diverged for {algorithm} × {adversary}"
            )

    @pytest.mark.parametrize("wakeup", ["staggered", "uniform-random"])
    def test_equivalence_under_async_wakeup(self, wakeup):
        for algorithm in ("dcolor", "smis", "dmatch"):
            spec = ScenarioSpec(
                n=24,
                algorithm=algorithm,
                adversary=component("flip-churn", flip_prob=0.08),
                topology="gnp",
                rounds=20,
                wakeup=wakeup,
            )
            full_rows, _ = _trace_rows(spec, seed=2, mode="full")
            incremental_rows, _ = _trace_rows(spec, seed=2, mode="incremental")
            assert incremental_rows == full_rows

    def test_every_pure_algorithm_actually_runs_incrementally(self):
        """The matrix must exercise the new paths, not silently degrade."""
        pure = []
        kernel = []
        for name in available("algorithms"):
            spec = ScenarioSpec(n=8, algorithm=name, rounds=2)
            ctx = _build_context(spec, 0)
            sim = Simulator(n=ctx.n, algorithm=ctx.algorithm, adversary=ctx.adversary)
            if ctx.algorithm.message_stability == "pure":
                # Auto picks the array kernel when the algorithm provides one
                # and the adversary has a kernel plan, else incremental.
                assert sim.delivery in ("incremental", "kernel")
                pure.append(name)
                if sim.delivery == "kernel":
                    kernel.append(name)
            else:
                assert sim.delivery == "full"
        # The paper's standalone algorithms are all pure; the Concat
        # combiners and the restart baselines are audited "none".
        assert "dcolor" in pure and "smis" in pure and "dmatch" in pure
        assert len(pure) >= 12
        # The four array-kernel algorithms must actually select the kernel
        # under the default (static) adversary.
        for name in ("basic-coloring", "scolor", "smis", "dmis"):
            assert name in kernel, f"{name} did not auto-select the kernel path"


# ---------------------------------------------------------------------------
# contract declarations + mode selection
# ---------------------------------------------------------------------------


class _PureNull(DistributedAlgorithm):
    name = "pure-null"
    message_stability = "pure"

    def on_wake(self, v):
        pass

    def compose(self, v):
        return None

    def compose_fingerprint(self, v):
        return None

    def deliver(self, v, inbox):
        pass

    def output(self, v):
        return 0


class TestModeSelection:
    def test_default_contract_is_conservative(self):
        assert DistributedAlgorithm.message_stability == "none"
        assert _PureNull().compose_fingerprint(0) is None
        assert DistributedAlgorithm.compose_fingerprint(_PureNull(), 0) is VOLATILE

    def _sim(self, algorithm, **kwargs):
        return Simulator(
            n=4, algorithm=algorithm, adversary=StaticAdversary(generators.ring(4)), **kwargs
        )

    def test_auto_selects_by_contract(self):
        assert self._sim(_PureNull()).delivery == "incremental"

        class Legacy(_PureNull):
            message_stability = "none"

        assert self._sim(Legacy()).delivery == "full"

    def test_forced_modes_and_degradation(self):
        assert self._sim(_PureNull(), delivery="full").delivery == "full"

        class Legacy(_PureNull):
            message_stability = "none"

        # Forcing incremental on an undeclared algorithm degrades to full:
        # the engine may not skip work the algorithm has not marked skippable.
        assert self._sim(Legacy(), delivery="incremental").delivery == "full"

    def test_context_manager_and_env_override(self, monkeypatch):
        with delivery_mode("full"):
            assert self._sim(_PureNull()).delivery == "full"
        monkeypatch.setenv(DELIVERY_ENV, "full")
        assert self._sim(_PureNull()).delivery == "full"
        monkeypatch.setenv(DELIVERY_ENV, "bogus")
        with pytest.raises(ConfigurationError):
            self._sim(_PureNull())

    def test_invalid_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            self._sim(_PureNull(), delivery="sometimes")
        with pytest.raises(ConfigurationError):
            with delivery_mode("sometimes"):
                pass

    def test_checkpoint_interval_validation(self):
        for bad in (0, -3, 1.5, None, True):
            with pytest.raises(ConfigurationError):
                self._sim(_PureNull(), checkpoint_interval=bad)
        assert self._sim(_PureNull(), checkpoint_interval=1).run(2).num_rounds == 2


# ---------------------------------------------------------------------------
# the verification harness catches wrong declarations
# ---------------------------------------------------------------------------


class _ImpureDeclaredPure(DistributedAlgorithm):
    """Deliberately violates the contract it declares: ``deliver`` advances a
    per-node clock even on an unchanged inbox, and the message depends on it."""

    name = "impure-declared-pure"
    message_stability = "pure"

    def __init__(self):
        super().__init__()
        self._clock = {}

    def on_wake(self, v):
        self._clock[v] = 0

    def compose(self, v):
        return self._clock[v] // 3  # changes every third round, unannounced

    def compose_fingerprint(self, v):
        return 0  # wrongly claims the message never changes

    def deliver(self, v, inbox):
        self._clock[v] += 1  # state change on an unchanged inbox: impure

    def output(self, v):
        return self._clock[v] // 3


@pytest.fixture
def impure_algorithm_registered():
    ALGORITHMS.register(
        "impure-declared-pure", lambda ctx: _ImpureDeclaredPure(), overwrite=True
    )
    try:
        yield
    finally:
        ALGORITHMS.unregister("impure-declared-pure")


class TestVerificationHarness:
    def test_impure_algorithm_actually_diverges(self, impure_algorithm_registered):
        spec = ScenarioSpec(
            n=12,
            algorithm="impure-declared-pure",
            adversary=component("flip-churn", flip_prob=0.05),
            rounds=10,
        )
        full_rows, _ = _trace_rows(spec, seed=0, mode="full")
        incremental_rows, _ = _trace_rows(spec, seed=0, mode="incremental")
        assert incremental_rows != full_rows

    def test_verify_flag_catches_wrong_declaration(
        self, impure_algorithm_registered, monkeypatch
    ):
        monkeypatch.setenv(VERIFY_INCREMENTAL_ENV, "1")
        spec = ScenarioSpec(
            n=12,
            algorithm="impure-declared-pure",
            adversary=component("flip-churn", flip_prob=0.05),
            rounds=10,
            metrics=("trace-summary",),
        )
        with pytest.raises(SimulationError, match="pure"):
            run_scenario_seed(spec, 0)

    def test_verify_flag_passes_honest_declarations(self, monkeypatch):
        monkeypatch.setenv(VERIFY_INCREMENTAL_ENV, "1")
        spec = ScenarioSpec(
            n=16,
            algorithm="dcolor",
            adversary=component("flip-churn", flip_prob=0.1),
            rounds=12,
            metrics=("trace-summary", "stability"),
        )
        verified = run_scenario_seed(spec, 1)
        monkeypatch.delenv(VERIFY_INCREMENTAL_ENV)
        assert verified == run_scenario_seed(spec, 1)


# ---------------------------------------------------------------------------
# the delta-native activity surface
# ---------------------------------------------------------------------------


class TestActivitySurface:
    def test_quiescence_on_static_graph(self):
        """Once a pure algorithm converges on a static graph, rounds go idle."""
        sim = Simulator(
            n=12,
            algorithm=_PureNull(),
            adversary=StaticAdversary(generators.ring(12)),
            seed=0,
        )
        sim.run(3)
        activity = sim.last_round_activity
        assert activity.mode == "incremental"
        assert activity.round_index == 3
        # PureNull's constant message + fingerprint: after the wake round
        # nothing is volatile, nothing changes — the dirty set is empty.
        assert activity.delivered == frozenset()
        assert activity.composed == frozenset()
        assert activity.changed_outputs == frozenset()
        assert activity.num_active == 0
        # Round 1 delivered to everyone (all nodes woke).
        assert sim.trace.metrics(1).outputs_changed == 12

    def test_full_path_reports_all_nodes_active(self):
        with delivery_mode("full"):
            sim = Simulator(
                n=6,
                algorithm=_PureNull(),
                adversary=StaticAdversary(generators.ring(6)),
            )
        sim.run(2)
        activity = sim.last_round_activity
        assert activity.mode == "full"
        assert activity.delivered == frozenset(range(6))
        assert activity.composed == frozenset(range(6))

    def test_trace_stores_changed_node_sets(self):
        spec = ScenarioSpec(
            n=16,
            algorithm="smis",
            adversary=component("markov-churn", p_off=0.05, p_on=0.05),
            rounds=15,
        )
        for mode in ("full", "incremental"):
            _, sim = _trace_rows(spec, seed=4, mode=mode)
            trace = sim.trace
            for r in trace.rounds():
                record = trace.record_at(r)
                assert record.changed is not None
                # The stored set must equal the from-scratch scan.
                previous = trace.outputs(r - 1) if r > 1 else {}
                current = trace.outputs(r)
                expected = frozenset(
                    v for v, value in current.items()
                    if v not in previous or previous[v] != value
                )
                assert trace.changed_nodes(r) == expected
                assert record.metrics.outputs_changed == len(expected)

    def test_activity_probe_and_output_activity_metric(self):
        spec = ScenarioSpec(
            n=20,
            algorithm="scolor",
            adversary=component("flip-churn", flip_prob=0.05),
            rounds=18,
            probe="activity",
            metrics=(component("output-activity"),),
        )
        result = run_scenario(spec.replace(seeds=(0,)))
        row = result.rows[0]
        assert row["activity_rounds"] == 18.0
        assert row["mean_active"] >= 0.0
        assert row["max_active"] <= 20.0
        assert 0.0 <= row["active_node_round_fraction"] <= 1.0
        assert row["mean_topology_churn"] >= 0.0
        # output-activity totals are exactly the summed outputs_changed metric.
        _, sim = _trace_rows(spec.replace(probe=None), seed=0, mode="incremental")
        expected_total = sum(
            sim.trace.metrics(r).outputs_changed for r in sim.trace.rounds()
        )
        assert row["total_changed_outputs"] == float(expected_total)

    def test_algorithm_contract_surfaced_in_docs(self):
        docs = available("algorithms", docs=True)
        assert "[delivery: pure]" in docs["dcolor"]
        assert "[delivery: pure]" in docs["smis"]
        assert "[delivery: none]" in docs["dynamic-coloring"]
        assert "[delivery: none]" in docs["restart-mis"]
        for name, doc in docs.items():
            assert "[delivery: " in doc, f"{name} doc lacks its contract annotation"
        # Array-kernel eligibility is surfaced per algorithm; the subclass
        # ablations inherit the method but decline at runtime, so only the
        # four exact kernel classes carry the tag.
        for name in ("basic-coloring", "scolor", "smis", "dmis"):
            assert "[kernel: array]" in docs[name], f"{name} lacks its kernel tag"
        for name, doc in docs.items():
            if name not in ("basic-coloring", "scolor", "smis", "dmis"):
                assert "[kernel: array]" not in doc, f"{name} wrongly tagged kernel"


# ---------------------------------------------------------------------------
# satellites: topology cache + exec phase stats
# ---------------------------------------------------------------------------


class TestTopologyCache:
    def test_same_inputs_share_one_topology(self):
        from repro.exec import topology_cache_clear, topology_cache_info

        topology_cache_clear()
        spec = ScenarioSpec(n=20, algorithm="scolor", topology="gnp_sparse", rounds=2)
        first = _build_context(spec, 3).base
        info = topology_cache_info()
        assert info["misses"] >= 1
        # Same seed + same topology inputs (different algorithm/adversary):
        # the very same immutable object comes back.
        other = spec.replace(algorithm=component("smis"), adversary=component("flip-churn"))
        assert _build_context(other, 3).base is first
        assert topology_cache_info()["hits"] >= 1
        # A different seed is a different random topology: no false sharing.
        assert _build_context(spec, 4).base is not first
        topology_cache_clear()

    def test_cached_topologies_match_direct_generation(self):
        from repro.exec import cached_base_topology, topology_cache_clear
        from repro.scenarios.registry import TOPOLOGIES
        from repro.utils.rng import spawn_generator

        topology_cache_clear()
        for seed in (0, 1, 5):
            direct = TOPOLOGIES.get("gnp")(
                24, spawn_generator(seed, "topology", "gnp", 24), p=0.2
            )
            for _ in range(2):  # second call exercises the hit path
                cached = cached_base_topology("gnp", {"p": 0.2}, 24, seed)
                assert cached == direct
        topology_cache_clear()

    def test_scenario_rows_unaffected_by_cache_state(self):
        from repro.exec import topology_cache_clear

        spec = ScenarioSpec(
            n=16,
            algorithm="dcolor",
            adversary=component("flip-churn", flip_prob=0.1),
            rounds=10,
            metrics=("stability",),
            seeds=(0, 1),
        )
        topology_cache_clear()
        cold = run_scenario(spec).rows
        warm = run_scenario(spec).rows
        assert cold == warm
        topology_cache_clear()


class TestExecStats:
    def test_phases_recorded_for_serial_run(self):
        from repro.exec import collect_stats
        from repro.exec.stats import EXEC_DISPATCH, UNIT_ROUNDS, UNIT_SETUP

        spec = ScenarioSpec(
            n=16,
            algorithm="scolor",
            adversary=component("flip-churn", flip_prob=0.05),
            rounds=10,
            metrics=("trace-summary",),
            seeds=(0, 1, 2),
        )
        with collect_stats() as stats:
            result = run_scenario(spec)
        assert len(result.rows) == 3
        assert stats.events(UNIT_SETUP) == 3
        assert stats.events(UNIT_ROUNDS) == 3
        assert stats.seconds(UNIT_ROUNDS) > 0.0
        assert stats.seconds(EXEC_DISPATCH) >= stats.seconds(UNIT_ROUNDS)
        snapshot = stats.as_dict()
        assert UNIT_SETUP in snapshot and UNIT_ROUNDS in snapshot

    def test_reporting_is_noop_without_collector(self):
        from repro.exec import record_phase, timed_phase

        record_phase("nobody-listening", 1.0)  # must not raise
        with timed_phase("nobody-listening"):
            pass

    def test_collectors_nest(self):
        from repro.exec import collect_stats, record_phase

        with collect_stats() as outer:
            record_phase("x", 1.0)
            with collect_stats() as inner:
                record_phase("x", 2.0)
            record_phase("x", 0.5)
        assert inner.seconds("x") == 2.0
        assert outer.seconds("x") == 1.5


# ---------------------------------------------------------------------------
# engine internals worth pinning down
# ---------------------------------------------------------------------------


class TestEngineInternals:
    def test_message_size_metrics_track_shrinking_messages(self):
        """The cached-bits histogram must follow max downwards, not just up."""

        class ShrinkingMessages(DistributedAlgorithm):
            name = "shrinking"
            message_stability = "pure"

            def __init__(self):
                super().__init__()
                self._big = {}

            def on_wake(self, v):
                self._big[v] = True

            def compose(self, v):
                return ("x" * 40) if self._big[v] else None

            def compose_fingerprint(self, v):
                return self._big[v]

            def deliver(self, v, inbox):
                if inbox:  # any neighbourhood change flips the node to small
                    self._big[v] = False

            def output(self, v):
                return 0 if self._big[v] else 1

        base = generators.ring(8)
        script = [base]

        from repro.dynamics.topology import EMPTY_DELTA, TopologyDelta
        from repro.dynamics.adversary import Adversary, FULLY_OBLIVIOUS

        class Script(Adversary):
            obliviousness = FULLY_OBLIVIOUS

            def step(self, view):
                if view.round_index == 1:
                    return base
                if view.round_index == 2:
                    return TopologyDelta(removed_edges=[(0, 1)])
                return EMPTY_DELTA

        with delivery_mode("incremental"):
            sim = Simulator(n=8, algorithm=ShrinkingMessages(), adversary=Script())
        trace = sim.run(4)
        with delivery_mode("full"):
            sim_full = Simulator(n=8, algorithm=ShrinkingMessages(), adversary=Script())
        trace_full = sim_full.run(4)
        for r in range(1, 5):
            assert trace.metrics(r).as_dict() == trace_full.metrics(r).as_dict()
        # Round 1 delivered the ring inboxes: everyone flipped small, so the
        # max message size must have come down with them.
        assert trace.metrics(4).max_message_bits < trace.metrics(1).max_message_bits

    def test_incremental_survives_stop_and_resume_run_calls(self):
        spec = ScenarioSpec(
            n=16,
            algorithm="smis",
            adversary=component("flip-churn", flip_prob=0.1),
            rounds=16,
        )
        with delivery_mode("incremental"):
            ctx = _build_context(spec, 9)
            sim = Simulator(n=ctx.n, algorithm=ctx.algorithm, adversary=ctx.adversary, seed=9)
            for _ in range(16):  # one round per run() call, like probe loops
                sim.run(1)
        chunked = [
            (r, dict(sim.trace.outputs(r)), sim.trace.metrics(r).as_dict())
            for r in sim.trace.rounds()
        ]
        full_rows, _ = _trace_rows(spec, seed=9, mode="full")
        assert chunked == [(r[0], r[3], r[4]) for r in full_rows]

    def test_mean_activity_is_sparse_under_light_churn(self):
        """The point of the PR: touched nodes per round ≪ n once converged."""
        spec = ScenarioSpec(
            n=400,
            algorithm="smis",
            adversary=component("markov-churn", p_off=0.002, p_on=0.002),
            topology="gnp_sparse",
            rounds=60,
        )
        with delivery_mode("incremental"):
            ctx = _build_context(spec, 1)
            sim = Simulator(n=ctx.n, algorithm=ctx.algorithm, adversary=ctx.adversary, seed=1)
            active = []
            for _ in range(60):
                sim.run(1)
                active.append(sim.last_round_activity.num_active)
        tail = active[30:]
        assert sum(tail) / len(tail) < 0.25 * 400
