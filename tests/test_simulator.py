"""Tests of the synchronous round engine (Section 2 round structure)."""

from typing import Mapping

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.dynamics import generators
from repro.dynamics.adversaries import ChurnAdversary, ScriptedAdversary, StaticAdversary
from repro.dynamics.adversary import Adversary, AdversaryView
from repro.dynamics.churn import FlipChurn
from repro.dynamics.topology import Topology
from repro.dynamics.wakeup import StaggeredWakeup
from repro.runtime.algorithm import DistributedAlgorithm
from repro.runtime.simulator import Simulator, run_simulation
from repro.utils.rng import RngFactory


class _Probe(DistributedAlgorithm):
    """Records the order of calls and the information available at each step."""

    name = "probe"

    def __init__(self):
        super().__init__()
        self.events = []
        self.inbox_sizes = {}

    def on_wake(self, v):
        self.events.append(("wake", v))

    def begin_round(self, round_index):
        self.events.append(("begin", round_index))

    def compose(self, v):
        self.events.append(("compose", v))
        return ("hello", v)

    def deliver(self, v, inbox: Mapping):
        self.events.append(("deliver", v))
        self.inbox_sizes[v] = len(inbox)

    def end_round(self, round_index):
        self.events.append(("end", round_index))

    def output(self, v):
        return self.inbox_sizes.get(v)


class TestRoundStructure:
    def test_compose_happens_before_any_delivery(self):
        topo = generators.ring(4)
        algorithm = _Probe()
        run_simulation(n=4, algorithm=algorithm, adversary=StaticAdversary(topo), rounds=1, seed=0)
        events = algorithm.events
        last_compose = max(i for i, e in enumerate(events) if e[0] == "compose")
        first_deliver = min(i for i, e in enumerate(events) if e[0] == "deliver")
        assert last_compose < first_deliver

    def test_inbox_matches_degree(self):
        topo = generators.star(5)
        algorithm = _Probe()
        trace = run_simulation(n=5, algorithm=algorithm, adversary=StaticAdversary(topo), rounds=1, seed=0)
        outputs = trace.outputs(1)
        assert outputs[0] == 4  # hub receives from all leaves
        assert all(outputs[v] == 1 for v in range(1, 5))

    def test_wake_only_once(self):
        topo = generators.ring(3)
        algorithm = _Probe()
        run_simulation(n=3, algorithm=algorithm, adversary=StaticAdversary(topo), rounds=3, seed=0)
        wakes = [e for e in algorithm.events if e[0] == "wake"]
        assert len(wakes) == 3

    def test_gradual_wakeup_calls_wake_later(self):
        base = generators.ring(6)
        algorithm = _Probe()
        adversary = StaticAdversary(base, wakeup=StaggeredWakeup(6, batch_size=2))
        run_simulation(n=6, algorithm=algorithm, adversary=adversary, rounds=4, seed=0)
        wake_order = [v for kind, v in algorithm.events if kind == "wake"]
        assert wake_order[:2] == [0, 1]
        assert set(wake_order) == set(range(6))

    def test_begin_and_end_round_hooks(self):
        topo = generators.ring(3)
        algorithm = _Probe()
        run_simulation(n=3, algorithm=algorithm, adversary=StaticAdversary(topo), rounds=2, seed=0)
        kinds = [e[0] for e in algorithm.events]
        assert kinds.count("begin") == 2 and kinds.count("end") == 2

    def test_metrics_recorded(self):
        topo = generators.ring(4)
        trace = run_simulation(n=4, algorithm=_Probe(), adversary=StaticAdversary(topo), rounds=2, seed=0)
        metrics = trace.metrics(1)
        assert metrics.num_awake == 4
        assert metrics.num_edges == 4
        assert metrics.messages_sent == 4
        assert metrics.messages_delivered == 8
        assert metrics.max_message_bits > 0


class TestSimulatorControl:
    def test_stop_when(self):
        topo = generators.ring(4)
        trace = run_simulation(
            n=4,
            algorithm=_Probe(),
            adversary=StaticAdversary(topo),
            rounds=50,
            seed=0,
            stop_when=lambda t: t.num_rounds >= 3,
        )
        assert trace.num_rounds == 3

    def test_run_can_be_resumed(self):
        topo = generators.ring(4)
        sim = Simulator(n=4, algorithm=_Probe(), adversary=StaticAdversary(topo), seed=0)
        sim.run(2)
        sim.run(3)
        assert sim.trace.num_rounds == 5

    def test_invalid_parameters(self):
        topo = generators.ring(4)
        with pytest.raises(ConfigurationError):
            Simulator(n=0, algorithm=_Probe(), adversary=StaticAdversary(topo))
        sim = Simulator(n=4, algorithm=_Probe(), adversary=StaticAdversary(topo))
        with pytest.raises(ConfigurationError):
            sim.run(-1)

    def test_adversary_returning_garbage_rejected(self):
        class Bad(Adversary):
            obliviousness = 5

            def step(self, view: AdversaryView):
                return "not a topology"

        sim = Simulator(n=3, algorithm=_Probe(), adversary=Bad())
        with pytest.raises(SimulationError):
            sim.run(1)

    def test_determinism_same_seed(self):
        base = generators.gnp(12, 0.3, RngFactory(5).stream("t"))

        def run(seed):
            adversary = ChurnAdversary(12, FlipChurn(base, 0.2), RngFactory(seed).stream("a"))
            from repro.algorithms.coloring import SColor

            return run_simulation(n=12, algorithm=SColor(), adversary=adversary, rounds=15, seed=seed)

        a = run(3)
        b = run(3)
        c = run(4)
        assert [a.outputs(r) for r in a.rounds()] == [b.outputs(r) for r in b.rounds()]
        assert [a.outputs(r) for r in a.rounds()] != [c.outputs(r) for r in c.rounds()]

    def test_scripted_adversary_drives_topologies(self):
        topologies = [Topology([0, 1, 2], [(0, 1)]), Topology([0, 1, 2], [(1, 2)])]
        trace = run_simulation(
            n=3, algorithm=_Probe(), adversary=ScriptedAdversary(topologies), rounds=2, seed=0
        )
        assert trace.topology(1).edges == frozenset({(0, 1)})
        assert trace.topology(2).edges == frozenset({(1, 2)})
