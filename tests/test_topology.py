"""Unit tests for :mod:`repro.dynamics.topology`."""

import networkx as nx
import pytest

from repro.errors import TopologyError
from repro.dynamics.topology import Topology, empty_topology, topology_from_networkx


class TestConstruction:
    def test_canonicalises_edges(self, triangle):
        assert (0, 1) in triangle.edges
        assert (1, 0) not in triangle.edges
        assert triangle.num_edges == 3

    def test_duplicate_edges_collapse(self):
        topo = Topology([0, 1], [(0, 1), (1, 0), (0, 1)])
        assert topo.num_edges == 1

    def test_rejects_edge_to_sleeping_node(self):
        with pytest.raises(TopologyError):
            Topology([0, 1], [(0, 2)])

    def test_rejects_self_loop(self):
        with pytest.raises(ValueError):
            Topology([0, 1], [(0, 0)])

    def test_isolated_nodes_allowed(self):
        topo = Topology([0, 1, 2], [(0, 1)])
        assert topo.degree(2) == 0
        assert topo.has_node(2)

    def test_empty_topology(self):
        topo = empty_topology([3, 4])
        assert topo.num_nodes == 2 and topo.num_edges == 0


class TestAccessors:
    def test_neighbors_and_degree(self, path4):
        assert path4.neighbors(1) == frozenset({0, 2})
        assert path4.degree(0) == 1
        assert path4.degree(1) == 2
        assert path4.degree(99) == 0

    def test_has_edge(self, path4):
        assert path4.has_edge(0, 1) and path4.has_edge(1, 0)
        assert not path4.has_edge(0, 2)
        assert not path4.has_edge(1, 1)

    def test_contains_iter_len(self, triangle):
        assert 0 in triangle and 5 not in triangle
        assert sorted(triangle) == [0, 1, 2]
        assert len(triangle) == 3

    def test_adjacency_mapping(self, triangle):
        adjacency = triangle.adjacency()
        assert adjacency[0] == frozenset({1, 2})


class TestDerivedGraphs:
    def test_subgraph(self, path4):
        sub = path4.subgraph({0, 1, 3})
        assert sub.nodes == frozenset({0, 1, 3})
        assert sub.edges == frozenset({(0, 1)})

    def test_ball_radii(self, path4):
        assert path4.ball(0, 0) == frozenset({0})
        assert path4.ball(0, 1) == frozenset({0, 1})
        assert path4.ball(0, 2) == frozenset({0, 1, 2})
        assert path4.ball(0, 10) == frozenset({0, 1, 2, 3})

    def test_ball_of_sleeping_node_is_empty(self, path4):
        assert path4.ball(99, 2) == frozenset()

    def test_ball_negative_radius_rejected(self, path4):
        with pytest.raises(TopologyError):
            path4.ball(0, -1)

    def test_induced_edges(self, triangle):
        assert triangle.induced_edges({0, 1}) == frozenset({(0, 1)})

    def test_with_edges_add_remove(self, path4):
        modified = path4.with_edges(add=[(0, 3)], remove=[(1, 2)])
        assert modified.has_edge(0, 3)
        assert not modified.has_edge(1, 2)
        # original untouched (immutability)
        assert path4.has_edge(1, 2) and not path4.has_edge(0, 3)

    def test_with_nodes(self, triangle):
        bigger = triangle.with_nodes([7])
        assert 7 in bigger.nodes and bigger.degree(7) == 0


class TestComparisons:
    def test_equality_and_hash(self):
        a = Topology([0, 1, 2], [(0, 1)])
        b = Topology([0, 1, 2], [(1, 0)])
        assert a == b
        assert hash(a) == hash(b)
        assert a != Topology([0, 1, 2], [(1, 2)])

    def test_restricted_equals(self):
        a = Topology([0, 1, 2, 3], [(0, 1), (2, 3)])
        b = Topology([0, 1, 2, 3], [(0, 1), (1, 3)])
        assert a.restricted_equals(b, {0, 1})
        assert not a.restricted_equals(b, {1, 2, 3})

    def test_restricted_equals_detects_node_difference(self):
        a = Topology([0, 1], [])
        b = Topology([0], [])
        assert not a.restricted_equals(b, {0, 1})


class TestConversions:
    def test_to_networkx_roundtrip(self, triangle):
        graph = triangle.to_networkx()
        assert isinstance(graph, nx.Graph)
        assert topology_from_networkx(graph) == triangle
