"""Observability layer: structured tracing, metrics registry, reporting.

Covers the trace sink and its schema, the ambient metrics registry, the
instrumented simulator/runner/dispatcher paths, the worker-timings
aggregation under re-dispatch, and the consumer verbs (``repro trace``,
``repro report``) — including the house invariant that tracing on/off
leaves store rows byte-identical.
"""

import io
import json

import pytest

from repro.errors import ConfigurationError
from repro.exec import ExecutionPolicy, run_units, units_for_spec
from repro.exec.remote import RemoteBackend
from repro.exec.remote.worker import WORKER_INTERRUPT_ENV
from repro.exec.runner import INTERRUPT_ENV
from repro.exec.stats import UNIT_ROUNDS, StatsCollector, collect_stats
from repro.exec.units import build_chunks
from repro.obs.metrics import (
    MetricsRegistry,
    active_registry,
    collect_metrics,
    metric_gauge,
    metric_inc,
    metric_observe,
)
from repro.obs.trace import (
    TRACE_ENV,
    TraceSink,
    active_sink,
    emit,
    read_trace,
    refresh_from_env,
    telemetry_from_mapping,
    trace_to,
    validate_event,
    validate_trace,
)
from repro.scenarios import ScenarioSpec, component
from repro.scenarios.store import canonical_json


def tiny_spec(**overrides):
    defaults = dict(
        n=16,
        topology="gnp_sparse",
        algorithm="dynamic-coloring",
        adversary=component("flip-churn", flip_prob=0.02),
        rounds=4,
        seeds=(0, 1, 2),
        metrics=(component("validity", problem="coloring"),),
    )
    defaults.update(overrides)
    return ScenarioSpec(**defaults)


def _events(path, name=None):
    events = read_trace(path)
    if name is None:
        return events
    return [event for event in events if event["event"] == name]


# ---------------------------------------------------------------------------
# sink mechanics and enablement
# ---------------------------------------------------------------------------


class TestTraceSink:
    def test_emit_writes_valid_ndjson_with_envelope(self, tmp_path):
        path = tmp_path / "t.ndjson"
        sink = TraceSink(path)
        sink.emit("ping", worker="w0")
        sink.emit("ping", worker="w1")
        sink.close()
        events = read_trace(path)
        assert [event["seq"] for event in events] == [0, 1]
        for event in events:
            assert validate_event(event) == []
            assert isinstance(event["pid"], int)
            assert isinstance(event["t"], float)

    def test_emit_is_a_noop_without_a_sink(self, tmp_path):
        assert active_sink() is None
        emit("ping", worker="nowhere")  # must not raise or create files
        assert list(tmp_path.iterdir()) == []

    def test_trace_to_nests_and_restores(self, tmp_path):
        outer, inner = tmp_path / "outer.ndjson", tmp_path / "inner.ndjson"
        with trace_to(outer):
            emit("ping", worker="outer")
            with trace_to(inner):
                emit("ping", worker="inner")
            emit("ping", worker="outer-again")
        assert active_sink() is None
        assert [event["worker"] for event in _events(outer, "ping")] == [
            "outer",
            "outer-again",
        ]
        assert [event["worker"] for event in _events(inner, "ping")] == ["inner"]

    def test_env_enablement_appends(self, tmp_path, monkeypatch):
        path = tmp_path / "env.ndjson"
        path.write_text("", encoding="utf-8")
        monkeypatch.setenv(TRACE_ENV, str(path))
        refresh_from_env()
        try:
            emit("ping", worker="from-env")
            emit("ping", worker="again")
        finally:
            monkeypatch.delenv(TRACE_ENV)
            refresh_from_env()
        assert [event["worker"] for event in _events(path, "ping")] == [
            "from-env",
            "again",
        ]
        emit("ping", worker="after-refresh")  # env gone: back to a no-op
        assert len(_events(path, "ping")) == 2

    def test_numpy_scalars_are_coerced(self, tmp_path):
        numpy = pytest.importorskip("numpy")
        path = tmp_path / "np.ndjson"
        with trace_to(path):
            emit("chunk_done", chunk=numpy.int64(3), units=numpy.int32(2))
        (event,) = _events(path, "chunk_done")
        assert event["chunk"] == 3 and event["units"] == 2
        assert validate_event(event) == []


# ---------------------------------------------------------------------------
# schema validation
# ---------------------------------------------------------------------------


class TestValidation:
    def _record(self, **overrides):
        record = {
            "event": "chunk_done",
            "seq": 0,
            "pid": 1,
            "t": 1.0,
            "chunk": 0,
            "units": 3,
        }
        record.update(overrides)
        return record

    def test_valid_record_passes(self):
        assert validate_event(self._record()) == []

    def test_extra_fields_are_allowed(self):
        assert validate_event(self._record(note="extra")) == []

    def test_unknown_event_is_rejected(self):
        problems = validate_event(self._record(event="warp"))
        assert any("unknown event" in problem for problem in problems)

    def test_missing_field_is_rejected(self):
        record = self._record()
        del record["units"]
        assert any("missing field 'units'" in p for p in validate_event(record))

    def test_wrong_type_is_rejected(self):
        problems = validate_event(self._record(units="three"))
        assert any("'units' is not int" in problem for problem in problems)

    def test_bool_is_not_an_int(self):
        problems = validate_event(self._record(units=True))
        assert any("'units' is not int" in problem for problem in problems)

    def test_int_satisfies_float_fields(self):
        record = {
            "event": "batch_end",
            "seq": 0,
            "pid": 1,
            "t": 2,  # int where float is expected: fine
            "label": "x",
            "units": 3,
            "seconds": 4,
        }
        assert validate_event(record) == []

    def test_validate_trace_reports_line_numbers(self, tmp_path):
        path = tmp_path / "bad.ndjson"
        good = json.dumps(self._record())
        path.write_text(
            good + "\n" + "{torn\n" + '{"event":"warp","seq":1,"pid":1,"t":1.0}\n',
            encoding="utf-8",
        )
        problems = validate_trace(path)
        assert any(problem.startswith("line 2: invalid JSON") for problem in problems)
        assert any("line 3: unknown event" in problem for problem in problems)

    def test_read_trace_is_strict(self, tmp_path):
        path = tmp_path / "torn.ndjson"
        path.write_text("{not json\n", encoding="utf-8")
        with pytest.raises(ConfigurationError, match="invalid trace line"):
            read_trace(path)

    def test_telemetry_block_parsing(self):
        assert telemetry_from_mapping({}).trace is None
        assert telemetry_from_mapping({"trace": "runs/t.ndjson"}).trace == "runs/t.ndjson"
        with pytest.raises(ConfigurationError, match="unknown keys: tarce"):
            telemetry_from_mapping({"tarce": "x"})
        with pytest.raises(ConfigurationError, match="non-empty string"):
            telemetry_from_mapping({"trace": 5})


# ---------------------------------------------------------------------------
# metrics registry
# ---------------------------------------------------------------------------


class TestMetricsRegistry:
    def test_counters_gauges_histograms(self):
        registry = MetricsRegistry()
        registry.inc("a")
        registry.inc("a", 4)
        registry.set_gauge("g", 1.25)
        for value in (1.0, 3.0, 2.0):
            registry.observe("h", value)
        assert registry.counter("a") == 5
        assert registry.gauge("g") == 1.25
        assert registry.histogram("h") == {
            "count": 3,
            "total": 6.0,
            "min": 1.0,
            "max": 3.0,
        }
        block = registry.as_provenance()
        assert block["counters"] == {"a": 5}
        assert block["gauges"] == {"g": 1.25}
        assert block["histograms"]["h"]["mean"] == 2.0
        assert "phases" not in block

    def test_empty_registry_yields_empty_block(self):
        assert MetricsRegistry().as_provenance() == {}

    def test_as_provenance_folds_in_stats(self):
        stats = StatsCollector()
        stats.add(UNIT_ROUNDS, 0.5)
        block = MetricsRegistry().as_provenance(stats)
        assert block["phases"][UNIT_ROUNDS] == {"seconds": 0.5, "events": 1}

    def test_ambient_helpers_are_noops_when_off(self):
        assert active_registry() is None
        metric_inc("x")
        metric_gauge("y", 1.0)
        metric_observe("z", 2.0)

    def test_collect_metrics_installs_and_restores(self):
        with collect_metrics() as registry:
            assert active_registry() is registry
            metric_inc("exec.units", 2)
            metric_gauge("rate", 4.0)
            metric_observe("chunk", 3.0)
        assert active_registry() is None
        assert registry.counter("exec.units") == 2


# ---------------------------------------------------------------------------
# instrumented pipeline: rounds, units, batches, byte-identity
# ---------------------------------------------------------------------------


class TestPipelineEvents:
    def test_run_units_emits_lifecycle_and_rows_match_untraced(self, tmp_path):
        units = units_for_spec(tiny_spec())
        baseline = run_units(units, ExecutionPolicy(backend="serial"))
        path = tmp_path / "run.ndjson"
        with trace_to(path):
            traced = run_units(units, ExecutionPolicy(backend="serial"))
        assert canonical_json(traced) == canonical_json(baseline)

        events = read_trace(path)
        assert validate_trace(path) == []
        counts = {}
        for event in events:
            counts[event["event"]] = counts.get(event["event"], 0) + 1
        assert counts["batch_begin"] == 1 and counts["batch_end"] == 1
        assert counts["unit_begin"] == 3 and counts["unit_end"] == 3
        assert counts["chunk_done"] >= 1
        assert counts["round"] > 0

        (begin,) = _events(path, "batch_begin")
        assert begin["units"] == 3 and begin["backend"] == "serial"
        rounds = _events(path, "round")
        assert all(event["mode"] in ("full", "delta", "kernel") for event in rounds)
        for unit in _events(path, "unit_begin"):
            assert unit["algorithm"] == "dynamic-coloring"
            assert unit["adversary"] == "flip-churn"

    def test_kernel_engine_emits_round_events(self, tmp_path):
        spec = tiny_spec(
            algorithm="scolor",
            adversary=component("markov-churn", p_off=0.05, p_on=0.05),
            delivery="kernel",
            seeds=(0,),
        )
        units = units_for_spec(spec)
        path = tmp_path / "kernel.ndjson"
        with trace_to(path):
            run_units(units, ExecutionPolicy(backend="serial"))
        assert validate_trace(path) == []
        rounds = _events(path, "round")
        assert rounds and all(event["mode"] == "kernel" for event in rounds)
        for event in rounds:
            assert isinstance(event["frontier"], int)
            assert isinstance(event["quiescent"], bool)

    def test_interrupted_resume_emits_journal_restore(self, tmp_path, monkeypatch):
        units = units_for_spec(tiny_spec())
        journal_dir = tmp_path / "journals"
        policy = ExecutionPolicy(
            backend="serial", chunk_size=1, journal_dir=str(journal_dir)
        )
        monkeypatch.setenv(INTERRUPT_ENV, "1")
        with pytest.raises(KeyboardInterrupt):
            run_units(units, policy)
        monkeypatch.delenv(INTERRUPT_ENV)

        path = tmp_path / "resume.ndjson"
        resume = ExecutionPolicy(
            backend="serial", chunk_size=1, journal_dir=str(journal_dir), resume=True
        )
        with trace_to(path):
            rows = run_units(units, resume)
        assert len(rows) == 3
        (restore,) = _events(path, "journal_restore")
        assert restore["restored"] >= 1
        (begin,) = _events(path, "batch_begin")
        assert begin["restored"] == restore["restored"]

    def test_metrics_registry_captures_runner_counters(self):
        units = units_for_spec(tiny_spec())
        with collect_metrics() as registry:
            run_units(units, ExecutionPolicy(backend="serial"))
        assert registry.counter("exec.units") == 3
        assert registry.counter("exec.chunks") >= 1
        block = registry.as_provenance()
        assert block["histograms"]["exec.chunk_units"]["count"] >= 1


# ---------------------------------------------------------------------------
# remote fabric: dispatch decisions and worker-timings aggregation
# ---------------------------------------------------------------------------


class TestRemoteTimings:
    def test_redispatch_after_worker_death_does_not_double_count(
        self, tmp_path, monkeypatch
    ):
        """Worker 0 dies mid-chunk; its chunk is re-dispatched.  The dead
        attempt must contribute neither rows, nor a chunk_result event, nor
        worker-reported phase seconds — only absorbed results count."""
        units = units_for_spec(tiny_spec(seeds=tuple(range(12))))
        expected = canonical_json(run_units(units, ExecutionPolicy(backend="serial")))

        path = tmp_path / "remote.ndjson"
        monkeypatch.setenv(WORKER_INTERRUPT_ENV, "2")
        backend = RemoteBackend(2, adaptive=False)
        with trace_to(path), collect_stats() as stats, backend:
            got = dict(backend.submit_batch(build_chunks(units, 3)))
        monkeypatch.delenv(WORKER_INTERRUPT_ENV)

        rows = [row for index in sorted(got) for row in got[index]]
        assert canonical_json(rows) == expected
        assert backend.stats["workers_lost"] >= 1
        assert backend.stats["redispatched"] >= 1

        assert validate_trace(path) == []
        assert len(_events(path, "worker_lost")) == backend.stats["workers_lost"]
        assert len(_events(path, "redispatch")) == backend.stats["redispatched"]
        results = _events(path, "chunk_result")
        # Exactly one absorbed result per unit: a duplicate or dead attempt
        # never lands a second chunk_result for the same work.
        assert sum(event["units"] for event in results) == len(units)
        # Worker-side timings arrived and were replayed into ambient stats
        # once per absorbed result.
        assert all(event["timings"] for event in results)
        expected_rounds = sum(
            event["timings"].get(UNIT_ROUNDS, 0.0) for event in results
        )
        assert stats.as_dict()[UNIT_ROUNDS] == pytest.approx(expected_rounds)
        assert stats.events(UNIT_ROUNDS) == len(results)

    def test_duplicate_result_is_dropped_before_timings_replay(self, tmp_path):
        """A slow worker answering for an already re-dispatched task is a
        duplicate: no rows, no timings replay, no chunk_result event."""
        path = tmp_path / "dup.ndjson"
        backend = RemoteBackend(1)
        message = {"index": 99, "rows": [], "timings": {UNIT_ROUNDS: 1.0}}
        with trace_to(path), collect_stats() as stats:
            outcome = backend._absorb_result(None, message, tasks={}, assemblies={})
        assert outcome is None
        assert stats.events(UNIT_ROUNDS) == 0
        assert _events(path, "chunk_result") == []

    def test_fleet_stats_mirror_into_metrics(self, monkeypatch):
        units = units_for_spec(tiny_spec(seeds=tuple(range(8))))
        monkeypatch.setenv(WORKER_INTERRUPT_ENV, "2")
        backend = RemoteBackend(2, adaptive=False)
        with collect_metrics() as registry, backend:
            list(backend.submit_batch(build_chunks(units, 2)))
        monkeypatch.delenv(WORKER_INTERRUPT_ENV)
        assert registry.counter("exec.remote.tasks_dispatched") == backend.stats[
            "tasks_dispatched"
        ]
        assert registry.counter("exec.remote.workers_lost") == backend.stats[
            "workers_lost"
        ]
        assert registry.counter("exec.remote.redispatched") == backend.stats[
            "redispatched"
        ]


# ---------------------------------------------------------------------------
# CLI: --trace, the telemetry config block, trace/report/log verbs
# ---------------------------------------------------------------------------


def _scenario_config(tmp_path, telemetry=None):
    config = {
        "kind": "scenario",
        "spec": tiny_spec(name="obs-demo", seeds=(0, 1)).to_dict(),
    }
    if telemetry is not None:
        config["telemetry"] = telemetry
    path = tmp_path / "obs-demo.json"
    path.write_text(json.dumps(config), encoding="utf-8")
    return path


def _entry(store):
    (path,) = sorted(store.glob("scenarios/*.json"))
    return path, json.loads(path.read_text(encoding="utf-8"))


class TestCli:
    def test_traced_run_keeps_store_rows_byte_identical(self, tmp_path):
        from repro.scenarios.cli import main

        config = _scenario_config(tmp_path)
        plain_store, traced_store = tmp_path / "plain", tmp_path / "traced"
        trace_path = tmp_path / "run.ndjson"
        assert main(["run", str(config), "--store", str(plain_store)]) == 0
        assert main(
            ["run", str(config), "--store", str(traced_store), "--trace", str(trace_path)]
        ) == 0
        assert validate_trace(trace_path) == []

        name_a, entry_a = _entry(plain_store)
        name_b, entry_b = _entry(traced_store)
        assert name_a.name == name_b.name
        assert canonical_json(entry_a["rows"]) == canonical_json(entry_b["rows"])
        assert entry_a["key_hash"] == entry_b["key_hash"]
        # Telemetry lands in provenance on both runs (metrics are always
        # collected); only the trace file is gated by the flag.
        assert "phases" in entry_b["provenance"]["telemetry"]

    def test_traced_rerun_leaves_existing_entry_untouched(self, tmp_path):
        from repro.scenarios.cli import main

        config = _scenario_config(tmp_path)
        store = tmp_path / "store"
        assert main(["run", str(config), "--store", str(store)]) == 0
        path, _ = _entry(store)
        before = path.read_bytes()
        assert main(
            ["run", str(config), "--store", str(store), "--trace", str(tmp_path / "t.ndjson")]
        ) == 0
        assert path.read_bytes() == before  # unchanged put: bytes untouched

    def test_config_telemetry_block_enables_tracing(self, tmp_path):
        from repro.scenarios.cli import main

        trace_path = tmp_path / "from-config.ndjson"
        config = _scenario_config(tmp_path, telemetry={"trace": str(trace_path)})
        assert main(["run", str(config), "--store", str(tmp_path / "store")]) == 0
        assert trace_path.is_file()
        assert validate_trace(trace_path) == []
        assert _events(trace_path, "unit_end")

    def test_cli_flag_wins_over_config_telemetry(self, tmp_path):
        from repro.scenarios.cli import main

        config_path_trace = tmp_path / "config-trace.ndjson"
        flag_trace = tmp_path / "flag-trace.ndjson"
        config = _scenario_config(tmp_path, telemetry={"trace": str(config_path_trace)})
        assert main(
            ["run", str(config), "--store", str(tmp_path / "store"),
             "--trace", str(flag_trace)]
        ) == 0
        assert flag_trace.is_file() and not config_path_trace.exists()

    def test_validate_rejects_bad_telemetry_block(self, tmp_path):
        from repro.scenarios.cli import main

        good = _scenario_config(tmp_path, telemetry={"trace": "runs/t.ndjson"})
        assert main(["validate", str(good)]) == 0
        bad = tmp_path / "bad.json"
        config = json.loads(good.read_text(encoding="utf-8"))
        config["telemetry"] = {"trace": 5}
        bad.write_text(json.dumps(config), encoding="utf-8")
        assert main(["validate", str(bad)]) == 1

    def test_trace_verb_summarises_filters_and_validates(self, tmp_path, capsys):
        from repro.scenarios.cli import main

        config = _scenario_config(tmp_path)
        trace_path = tmp_path / "run.ndjson"
        assert main(
            ["run", str(config), "--store", str(tmp_path / "store"),
             "--trace", str(trace_path)]
        ) == 0
        capsys.readouterr()

        assert main(["trace", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "event counts" in out and "rounds" in out

        assert main(["trace", str(trace_path), "--validate"]) == 0
        assert "schema-valid" in capsys.readouterr().out

        assert main(["trace", str(trace_path), "--event", "unit_end", "--raw"]) == 0
        raw = [line for line in capsys.readouterr().out.splitlines() if line]
        assert len(raw) == 2
        assert all(json.loads(line)["event"] == "unit_end" for line in raw)

        assert main(["trace", str(tmp_path / "missing.ndjson")]) == 1

    def test_trace_validate_fails_on_schema_problems(self, tmp_path, capsys):
        from repro.scenarios.cli import main

        path = tmp_path / "bad.ndjson"
        path.write_text('{"event":"warp","seq":0,"pid":1,"t":1.0}\n', encoding="utf-8")
        assert main(["trace", str(path), "--validate"]) == 1
        assert "unknown event" in capsys.readouterr().err

    def test_report_verb_renders_markdown(self, tmp_path, capsys):
        from repro.scenarios.cli import main

        config = _scenario_config(tmp_path)
        store = tmp_path / "store"
        assert main(["run", str(config), "--store", str(store)]) == 0
        capsys.readouterr()
        assert main(["report", "--store", str(store)]) == 0
        out = capsys.readouterr().out
        assert "# Study report" in out
        assert "## Phase-time splits" in out
        assert "## Fleet utilization" in out
        assert "| scenarios/obs-demo |" in out

        out_file = tmp_path / "report.md"
        assert main(["report", "--store", str(store), "--out", str(out_file)]) == 0
        assert "# Study report" in out_file.read_text(encoding="utf-8")

        assert main(["report", "--store", str(tmp_path / "empty")]) == 1

    def test_log_shows_top_phases(self, tmp_path, capsys):
        from repro.scenarios.cli import main

        config = _scenario_config(tmp_path)
        store = tmp_path / "store"
        assert main(["run", str(config), "--store", str(store)]) == 0
        capsys.readouterr()
        assert main(["log", "--store", str(store)]) == 0
        out = capsys.readouterr().out
        # exec_dispatch wraps the whole batch, so it is always a top phase
        assert "phases" in out and "exec_dispatch=" in out

        assert main(["log", "--store", str(store), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert any("telemetry" in entry for entry in payload["entries"])
        (entry,) = [entry for entry in payload["entries"] if "telemetry" in entry]
        assert "phases" in entry["telemetry"]


class TestVerifyProgress:
    def test_run_verify_streams_progress(self):
        from repro.verify.harness import run_verify

        stream = io.StringIO()
        verdicts = run_verify(
            suite="smoke",
            contracts=["delta-vs-snapshot"],
            progress=True,
            progress_stream=stream,
        )
        assert verdicts and all(v.status == "pass" for v in verdicts)
        painted = stream.getvalue()
        assert "verify[smoke]" in painted and "1/1" in painted
