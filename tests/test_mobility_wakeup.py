"""Unit tests for the mobility model and the wake-up schedules."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.dynamics.mobility import RandomWaypointMobility
from repro.dynamics.wakeup import (
    AllAwake,
    ExplicitWakeup,
    StaggeredWakeup,
    UniformRandomWakeup,
)


class TestRandomWaypointMobility:
    def test_positions_stay_in_unit_square(self, rng_factory):
        model = RandomWaypointMobility(20, radius=0.3, speed=0.1, rng=rng_factory.stream("mob"))
        for _ in range(15):
            model.step()
        positions = model.positions
        assert np.all(positions >= -1e-9) and np.all(positions <= 1 + 1e-9)

    def test_edges_respect_radius(self, rng_factory):
        model = RandomWaypointMobility(15, radius=0.25, speed=0.05, rng=rng_factory.stream("mob2"))
        topo = model.step()
        positions = model.positions
        for u, v in topo.edges:
            assert np.linalg.norm(positions[u] - positions[v]) <= 0.25 + 1e-9

    def test_current_edges_matches_step_topology(self, rng_factory):
        model = RandomWaypointMobility(10, radius=0.4, speed=0.05, rng=rng_factory.stream("mob3"))
        topo = model.step()
        assert model.current_edges() == topo.edges

    def test_invalid_parameters_rejected(self, rng_factory):
        with pytest.raises(ConfigurationError):
            RandomWaypointMobility(0, radius=0.2, speed=0.1, rng=rng_factory.stream("m"))
        with pytest.raises(ConfigurationError):
            RandomWaypointMobility(5, radius=0.2, speed=0.1, pause_probability=2.0, rng=rng_factory.stream("m"))


class TestWakeupSchedules:
    def test_all_awake(self):
        schedule = AllAwake(5)
        assert schedule.awake_at(0) == frozenset()
        assert schedule.awake_at(1) == frozenset(range(5))
        assert schedule.wake_round(3) == 1

    def test_staggered_monotone(self):
        schedule = StaggeredWakeup(10, batch_size=3, interval=2)
        previous = frozenset()
        for r in range(1, 12):
            awake = schedule.awake_at(r)
            assert previous <= awake
            previous = awake
        assert schedule.awake_at(1) == frozenset(range(3))
        assert schedule.awake_at(20) == frozenset(range(10))

    def test_uniform_random_monotone_and_bounded(self, rng_factory):
        schedule = UniformRandomWakeup(20, spread=6, rng=rng_factory.stream("wake"))
        previous = frozenset()
        for r in range(1, 8):
            awake = schedule.awake_at(r)
            assert previous <= awake
            previous = awake
        assert schedule.awake_at(6) == frozenset(range(20))
        assert 1 <= schedule.wake_round(0) <= 6

    def test_explicit(self):
        schedule = ExplicitWakeup({0: 1, 1: 3})
        assert schedule.awake_at(1) == frozenset({0})
        assert schedule.awake_at(3) == frozenset({0, 1})
        assert schedule.wake_round(1) == 3

    def test_explicit_rejects_round_zero(self):
        with pytest.raises(ConfigurationError):
            ExplicitWakeup({0: 0})

    def test_staggered_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            StaggeredWakeup(5, batch_size=0)
        with pytest.raises(ConfigurationError):
            StaggeredWakeup(5, batch_size=1, interval=0)
