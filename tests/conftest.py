"""Shared fixtures for the test-suite."""

from __future__ import annotations

import pytest

from repro.utils.rng import RngFactory
from repro.dynamics import generators
from repro.dynamics.topology import Topology


@pytest.fixture
def rng_factory() -> RngFactory:
    """A deterministic RNG factory for tests."""
    return RngFactory(12345)


@pytest.fixture
def triangle() -> Topology:
    """The triangle graph on nodes {0, 1, 2}."""
    return Topology([0, 1, 2], [(0, 1), (1, 2), (0, 2)])


@pytest.fixture
def path4() -> Topology:
    """The path 0 - 1 - 2 - 3."""
    return generators.path(4)


@pytest.fixture
def small_gnp(rng_factory: RngFactory) -> Topology:
    """A small sparse random graph used by many algorithm tests."""
    return generators.gnp(24, 0.2, rng_factory.stream("small_gnp"))


@pytest.fixture
def medium_gnp(rng_factory: RngFactory) -> Topology:
    """A medium random graph for convergence tests."""
    return generators.gnp(48, 0.12, rng_factory.stream("medium_gnp"))
