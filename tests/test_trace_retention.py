"""The ``trace_retention`` knob: O(#changes) stats traces vs full retention.

The contract of ``trace_retention="stats"`` is *observational equivalence*:
every lazy accessor — ``RoundRecord.outputs`` (replayed from per-round
update dicts), ``RoundRecord.changed``, ``RoundActivity``'s frozenset
views — returns exactly the values the eager full-retention trace stores,
for every delivery mode and every adversary, and the metric rows written to
the results store are byte-identical.  Only the memory shape may differ.
"""

import json

import numpy as np
import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.runtime.simulator import Simulator, delivery_mode
from repro.runtime.trace import ExecutionTrace
from repro.scenarios import ScenarioSpec, component
from repro.scenarios.executor import _build_context, run_scenario_seed

from test_incremental_delivery import _ADVERSARY_SPECS

KERNEL_ALGORITHMS = ("basic-coloring", "scolor", "smis", "dmis")


def _spec(algorithm: str, adversary, *, n: int = 24, rounds: int = 12) -> ScenarioSpec:
    return ScenarioSpec(
        n=n,
        algorithm=component(algorithm),
        adversary=adversary,
        topology=component("gnp", p=0.25),
        rounds=rounds,
        seeds=(3,),
        metrics=(),
        name=f"retention-{algorithm}",
    )


def _rows(spec: ScenarioSpec, mode: str, retention: str):
    """Flattened comparable rows of one run under a forced delivery mode."""
    with delivery_mode(mode):
        ctx = _build_context(spec, 3)
        sim = Simulator(
            n=ctx.n,
            algorithm=ctx.algorithm,
            adversary=ctx.adversary,
            seed=ctx.seed,
            trace_retention=retention,
        )
        sim.run(ctx.rounds)
    return [
        (
            record.round_index,
            record.topology.nodes,
            record.topology.edges,
            dict(record.outputs),
            sorted(record.changed),
            record.metrics.as_dict(),
        )
        for record in sim.trace
    ]


class TestLazyEqualsEager:
    @pytest.mark.parametrize("algorithm", KERNEL_ALGORITHMS)
    @pytest.mark.parametrize("adversary_name", sorted(_ADVERSARY_SPECS))
    def test_stats_trace_matches_full_trace_on_kernel_path(self, algorithm, adversary_name):
        """kernel algorithm × plan-adversary matrix: lazy accessors == eager.

        ``delivery="kernel"`` exercises the array engine's ``record_stats``
        path for plan-capable adversaries and the generic engine's
        ``record_lazy`` path for the rest — both must replay to the values
        full retention stored eagerly.
        """
        spec = _spec(algorithm, _ADVERSARY_SPECS[adversary_name])
        assert _rows(spec, "kernel", "stats") == _rows(spec, "kernel", "full")

    @pytest.mark.parametrize("mode", ("full", "incremental"))
    def test_stats_trace_matches_on_classic_paths(self, mode):
        spec = _spec("smis", _ADVERSARY_SPECS["markov-churn"])
        assert _rows(spec, mode, "stats") == _rows(spec, mode, "full")

    def test_random_access_replay(self):
        """Out-of-order ``outputs`` access replays correctly from any base."""
        spec = _spec("dmis", _ADVERSARY_SPECS["flip-churn"], rounds=15)
        with delivery_mode("kernel"):
            ctx = _build_context(spec, 3)
            stats_sim = Simulator(
                n=ctx.n,
                algorithm=ctx.algorithm,
                adversary=ctx.adversary,
                seed=ctx.seed,
                trace_retention="stats",
            )
            stats_sim.run(ctx.rounds)
            ctx2 = _build_context(spec, 3)
            full_sim = Simulator(
                n=ctx2.n, algorithm=ctx2.algorithm, adversary=ctx2.adversary, seed=ctx2.seed
            )
            full_sim.run(ctx2.rounds)
        reference = {r.round_index: dict(r.outputs) for r in full_sim.trace}
        trace = stats_sim.trace
        for round_index in (15, 1, 8, 3, 14, 8, 2, 15):
            assert dict(trace.outputs(round_index)) == reference[round_index]


class TestStoreRowByteIdentity:
    def test_stats_retention_leaves_rows_byte_identical(self):
        """The knob may change trace memory, never the committed rows."""
        spec = ScenarioSpec(
            n=32,
            algorithm=component("smis"),
            adversary=component("markov-churn", p_off=0.1, p_on=0.1),
            topology=component("gnp", p=0.2),
            rounds=20,
            seeds=(5,),
            metrics=(
                component("stability"),
                component("validity", problem="mis"),
                component("output-activity"),
            ),
            name="retention-rows",
        )
        full_row = run_scenario_seed(spec, 5)
        stats_row = run_scenario_seed(spec.replace(trace_retention="stats"), 5)
        assert json.dumps(full_row, sort_keys=True) == json.dumps(stats_row, sort_keys=True)

    def test_to_dict_omits_default_retention(self):
        """Committed store keys predate the knob: ``None`` must not re-key."""
        spec = _spec("smis", _ADVERSARY_SPECS["static"])
        assert "trace_retention" not in spec.to_dict()
        explicit = spec.replace(trace_retention="stats")
        data = explicit.to_dict()
        assert data["trace_retention"] == "stats"
        assert ScenarioSpec.from_dict(data).trace_retention == "stats"


class TestValidation:
    def test_spec_rejects_unknown_retention(self):
        with pytest.raises(ConfigurationError, match="trace_retention"):
            _spec("smis", _ADVERSARY_SPECS["static"]).replace(trace_retention="everything")

    def test_trace_rejects_unknown_retention(self):
        with pytest.raises(ConfigurationError):
            ExecutionTrace(4, "alg", "adv", retention="bogus")

    def test_record_stats_requires_stats_mode(self):
        trace = ExecutionTrace(4, "alg", "adv")
        with pytest.raises(SimulationError):
            trace.record_stats(None, {}, None)


class TestActivityLaziness:
    def test_kernel_activity_views_are_frozensets(self):
        spec = _spec("smis", _ADVERSARY_SPECS["markov-churn"], rounds=6)
        with delivery_mode("kernel"):
            ctx = _build_context(spec, 3)
            sim = Simulator(
                n=ctx.n, algorithm=ctx.algorithm, adversary=ctx.adversary, seed=ctx.seed
            )
            sim.run(ctx.rounds)
        activity = sim.last_round_activity
        assert activity.mode == "kernel"
        assert isinstance(activity.composed, frozenset)
        assert isinstance(activity.delivered, frozenset)
        assert isinstance(activity.changed_outputs, frozenset)
        assert activity.num_active == len(activity.delivered)
