"""Tests of the colouring algorithms (Algorithms 2, 3, 6 and the combined algorithm)."""

import pytest

from repro.dynamics import generators
from repro.dynamics.adversaries import ChurnAdversary, ScriptedAdversary, StaticAdversary, TargetedColoringAdversary
from repro.dynamics.churn import FlipChurn
from repro.dynamics.topology import Topology
from repro.problems import coloring_problem_pair
from repro.problems.coloring import is_proper_coloring
from repro.runtime.simulator import run_simulation
from repro.utils.rng import RngFactory
from repro.core import default_window, verify_never_retracts, verify_partial_solution_every_round, verify_t_dynamic
from repro.algorithms.coloring import (
    BasicColoring,
    DColor,
    DynamicColoring,
    RestartColoring,
    SColor,
    SColorNoUncolorAblation,
    dynamic_coloring,
    greedy_coloring,
)
from repro.analysis.convergence import rounds_to_completion


class TestGreedyColoring:
    def test_valid_and_within_degree_bound(self, medium_gnp):
        colors = greedy_coloring(medium_gnp)
        assert is_proper_coloring(medium_gnp, colors)
        for v, c in colors.items():
            assert 1 <= c <= medium_gnp.degree(v) + 1

    def test_respects_precoloring(self, path4):
        colors = greedy_coloring(path4, precolored={0: 2})
        assert colors[0] == 2 and is_proper_coloring(path4, colors)

    def test_conflicting_precoloring_rejected(self, path4):
        with pytest.raises(ValueError):
            greedy_coloring(path4, precolored={0: 1, 1: 1})

    def test_custom_order(self, path4):
        colors = greedy_coloring(path4, order=[3, 2, 1, 0])
        assert is_proper_coloring(path4, colors)


class TestBasicColoring:
    def test_colors_static_graph(self, medium_gnp):
        n = medium_gnp.num_nodes
        trace = run_simulation(
            n=n, algorithm=BasicColoring(), adversary=StaticAdversary(medium_gnp), rounds=60, seed=1
        )
        final = trace.outputs(trace.num_rounds)
        assert is_proper_coloring(medium_gnp, final)
        for v, c in final.items():
            assert 1 <= c <= medium_gnp.degree(v) + 1

    def test_never_uncolors(self, medium_gnp):
        trace = run_simulation(
            n=medium_gnp.num_nodes,
            algorithm=BasicColoring(),
            adversary=StaticAdversary(medium_gnp),
            rounds=40,
            seed=2,
        )
        assert verify_never_retracts(trace) == []

    def test_completion_time_reasonable(self, medium_gnp):
        trace = run_simulation(
            n=medium_gnp.num_nodes,
            algorithm=BasicColoring(),
            adversary=StaticAdversary(medium_gnp),
            rounds=80,
            seed=3,
        )
        done = rounds_to_completion(trace)
        assert done is not None and done <= default_window(medium_gnp.num_nodes)

    def test_honours_input_coloring(self, path4):
        trace = run_simulation(
            n=4,
            algorithm=BasicColoring(),
            adversary=StaticAdversary(path4),
            rounds=20,
            seed=4,
            input_assignment={0: 2, 1: 1},
        )
        final = trace.outputs(trace.num_rounds)
        assert final[0] == 2 and final[1] == 1
        assert is_proper_coloring(path4, final)

    def test_isolated_node_gets_color_one(self):
        topo = Topology([0], [])
        trace = run_simulation(n=1, algorithm=BasicColoring(), adversary=StaticAdversary(topo), rounds=3, seed=0)
        assert trace.outputs(3)[0] == 1


class TestSColor:
    def test_partial_solution_every_round_under_churn(self, medium_gnp):
        n = medium_gnp.num_nodes
        adversary = ChurnAdversary(n, FlipChurn(medium_gnp, 0.05), RngFactory(7).stream("adv"))
        trace = run_simulation(n=n, algorithm=SColor(), adversary=adversary, rounds=60, seed=7)
        assert verify_partial_solution_every_round(trace, coloring_problem_pair()) == []

    def test_uncolors_on_conflict_edge(self):
        # Two isolated nodes colour themselves with colour 1; joining them by
        # an edge must clear (at least) one of the colours by the end of the round.
        apart = Topology([0, 1], [])
        joined = Topology([0, 1], [(0, 1)])
        adversary = ScriptedAdversary([apart, apart] + [joined] * 18)
        trace = run_simulation(n=2, algorithm=SColor(), adversary=adversary, rounds=20, seed=5)
        assert trace.outputs(2) == {0: 1, 1: 1}
        after = trace.outputs(3)
        assert not (after[0] == 1 and after[1] == 1)
        # Eventually (w.h.p. well within 17 further rounds) the pair is properly coloured again.
        final = trace.outputs(20)
        assert final[0] != final[1] and None not in final.values()

    def test_uncolors_when_degree_drops(self):
        star = generators.star(4)
        lonely = Topology(range(4), [])
        adversary = ScriptedAdversary([star] * 10 + [lonely] * 3)
        trace = run_simulation(n=4, algorithm=SColor(), adversary=adversary, rounds=13, seed=6)
        colored = trace.outputs(10)
        assert all(value is not None for value in colored.values())
        # After isolation every node's palette is {1}; anyone with a larger colour resets.
        final = trace.outputs(13)
        for v, value in final.items():
            assert value is None or value == 1

    def test_no_uncolor_ablation_keeps_conflicts(self):
        apart = Topology([0, 1], [])
        joined = Topology([0, 1], [(0, 1)])
        adversary = ScriptedAdversary([apart, apart, joined, joined])
        trace = run_simulation(n=2, algorithm=SColorNoUncolorAblation(), adversary=adversary, rounds=4, seed=5)
        final = trace.outputs(4)
        assert final[0] == 1 and final[1] == 1  # conflict persists
        assert len(verify_partial_solution_every_round(trace, coloring_problem_pair())) > 0

    def test_static_graph_behaves_like_basic(self, medium_gnp):
        n = medium_gnp.num_nodes
        trace = run_simulation(n=n, algorithm=SColor(), adversary=StaticAdversary(medium_gnp), rounds=60, seed=8)
        final = trace.outputs(trace.num_rounds)
        assert is_proper_coloring(medium_gnp, final)


class TestDColor:
    def test_extends_input_and_never_retracts(self, medium_gnp):
        n = medium_gnp.num_nodes
        input_colors = {0: 1, 1: 2}
        adversary = ChurnAdversary(n, FlipChurn(medium_gnp, 0.03), RngFactory(9).stream("adv"))
        trace = run_simulation(
            n=n, algorithm=DColor(), adversary=adversary, rounds=50, seed=9, input_assignment=input_colors
        )
        assert verify_never_retracts(trace) == []
        final = trace.outputs(trace.num_rounds)
        assert final[0] == 1 and final[1] == 2

    def test_all_colored_within_window_under_churn(self, medium_gnp):
        n = medium_gnp.num_nodes
        adversary = ChurnAdversary(n, FlipChurn(medium_gnp, 0.03), RngFactory(10).stream("adv"))
        trace = run_simulation(n=n, algorithm=DColor(), adversary=adversary, rounds=default_window(n), seed=10)
        final = trace.outputs(trace.num_rounds)
        assert all(value is not None for value in final.values())

    def test_packing_on_intersection_graph(self, medium_gnp):
        n = medium_gnp.num_nodes
        adversary = ChurnAdversary(n, FlipChurn(medium_gnp, 0.05), RngFactory(11).stream("adv"))
        trace = run_simulation(n=n, algorithm=DColor(), adversary=adversary, rounds=40, seed=11)
        final = trace.outputs(trace.num_rounds)
        intersection = trace.graph.intersection_graph(trace.num_rounds, trace.num_rounds)
        assert is_proper_coloring(intersection, final, require_complete=False)

    def test_covering_bound_on_union_degree(self, medium_gnp):
        n = medium_gnp.num_nodes
        adversary = ChurnAdversary(n, FlipChurn(medium_gnp, 0.05), RngFactory(12).stream("adv"))
        trace = run_simulation(n=n, algorithm=DColor(), adversary=adversary, rounds=40, seed=12)
        final = trace.outputs(trace.num_rounds)
        union = trace.graph.union_graph(trace.num_rounds, trace.num_rounds)
        for v, color in final.items():
            if color is not None and v in union.nodes:
                assert color <= union.degree(v) + 1

    def test_palette_only_shrinks(self, small_gnp):
        from repro.runtime.simulator import Simulator

        n = small_gnp.num_nodes
        algorithm = DColor()
        adversary = ChurnAdversary(n, FlipChurn(small_gnp, 0.05), RngFactory(13).stream("adv"))
        sim = Simulator(n=n, algorithm=algorithm, adversary=adversary, seed=13)
        sim.run(2)
        previous = {v: algorithm.palette_of(v) for v in range(n)}
        for _ in range(10):
            sim.run(1)
            for v in range(n):
                current = algorithm.palette_of(v)
                assert current <= previous[v]
                previous[v] = current


class TestDynamicColoring:
    def test_t_dynamic_under_churn(self, medium_gnp):
        n = medium_gnp.num_nodes
        T1 = default_window(n)
        adversary = ChurnAdversary(n, FlipChurn(medium_gnp, 0.03), RngFactory(14).stream("adv"))
        trace = run_simulation(n=n, algorithm=DynamicColoring(T1), adversary=adversary, rounds=3 * T1, seed=14)
        assert verify_t_dynamic(trace, coloring_problem_pair(), T1) == []

    def test_t_dynamic_under_targeted_adversary(self, small_gnp):
        n = small_gnp.num_nodes
        T1 = default_window(n)
        adversary = TargetedColoringAdversary(
            small_gnp, attacks_per_round=2, lifetime=T1, rng=RngFactory(15).stream("adv")
        )
        trace = run_simulation(n=n, algorithm=DynamicColoring(T1), adversary=adversary, rounds=3 * T1, seed=15)
        assert verify_t_dynamic(trace, coloring_problem_pair(), T1) == []

    def test_stable_on_static_graph(self, small_gnp):
        n = small_gnp.num_nodes
        T1 = default_window(n)
        trace = run_simulation(
            n=n, algorithm=DynamicColoring(T1), adversary=StaticAdversary(small_gnp), rounds=4 * T1, seed=16
        )
        grace = 2 * T1
        for v in range(n):
            values = {trace.output_of(v, r) for r in range(grace + 1, trace.num_rounds + 1)}
            assert len(values) == 1 and None not in values

    def test_factory_uses_default_window(self):
        algorithm = dynamic_coloring(200)
        assert algorithm.T1 == default_window(200)
        assert dynamic_coloring(200, window=9).T1 == 9


class TestRestartColoringBaseline:
    def test_period_validated(self):
        with pytest.raises(Exception):
            RestartColoring(1)

    def test_restarts_cause_output_churn(self, small_gnp):
        n = small_gnp.num_nodes
        trace = run_simulation(
            n=n, algorithm=RestartColoring(6), adversary=StaticAdversary(small_gnp), rounds=40, seed=17
        )
        assert len(verify_never_retracts(trace)) > 0  # outputs get wiped

    def test_restart_metric_reported(self, small_gnp):
        n = small_gnp.num_nodes
        algorithm = RestartColoring(5)
        run_simulation(n=n, algorithm=algorithm, adversary=StaticAdversary(small_gnp), rounds=30, seed=18)
        assert algorithm.metrics()["restarts"] > 0
        assert algorithm.period == 5
