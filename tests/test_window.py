"""Unit tests for the incremental sliding window (Definition 2.1 machinery)."""

import pytest

from repro.errors import ConfigurationError
from repro.dynamics.topology import Topology
from repro.dynamics.window import SlidingWindow


def topo(edges, nodes=range(4)):
    return Topology(nodes, edges)


class TestSlidingWindowBasics:
    def test_invalid_window_size(self):
        with pytest.raises(ConfigurationError):
            SlidingWindow(0)

    def test_empty_window(self):
        window = SlidingWindow(3)
        assert window.window_length == 0
        assert window.intersection_nodes() == frozenset()
        assert window.union_edges() == frozenset()

    def test_single_round(self):
        window = SlidingWindow(3)
        snap = window.push(topo([(0, 1), (2, 3)]))
        assert snap.intersection.edges == frozenset({(0, 1), (2, 3)})
        assert snap.union.edges == frozenset({(0, 1), (2, 3)})
        assert snap.window_length == 1

    def test_intersection_and_union(self):
        window = SlidingWindow(2)
        window.push(topo([(0, 1)]))
        snap = window.push(topo([(0, 1), (1, 2)]))
        assert snap.intersection.edges == frozenset({(0, 1)})
        assert snap.union.edges == frozenset({(0, 1), (1, 2)})

    def test_eviction(self):
        window = SlidingWindow(2)
        window.push(topo([(0, 1)]))
        window.push(topo([(1, 2)]))
        snap = window.push(topo([(2, 3)]))
        # Round 1's edge (0,1) left the window.
        assert (0, 1) not in snap.union.edges
        assert snap.union.edges == frozenset({(1, 2), (2, 3)})
        assert snap.intersection.edges == frozenset()

    def test_node_intersection(self):
        window = SlidingWindow(2)
        window.push(Topology([0, 1], [(0, 1)]))
        snap = window.push(Topology([0, 1, 2], [(0, 1), (1, 2)]))
        # Node 2 was not awake in the first round of the window, so it is not
        # in V^{T∩}; the union edge set is nevertheless unrestricted
        # (Definition 2.1 / "neighbours seen during the window").
        assert snap.intersection.nodes == frozenset({0, 1})
        assert (1, 2) in snap.union.edges

    def test_union_edges_unrestricted(self):
        window = SlidingWindow(2)
        window.push(Topology([0, 1], [(0, 1)]))
        window.push(Topology([0, 1, 2], [(1, 2)]))
        assert window.union_edges() == frozenset({(0, 1), (1, 2)})
        assert window.union_edges_all() == window.union_edges()

    def test_union_degree_counts_all_neighbours_seen(self):
        window = SlidingWindow(3)
        window.push(topo([(0, 1)]))
        window.push(topo([(0, 2)]))
        window.push(topo([(0, 3)]))
        assert window.union_degree(0) == 3
        assert window.union_degree(1) == 1
        assert window.union_degree(99) == 0

    def test_round_index_advances(self):
        window = SlidingWindow(2)
        assert window.round_index == 0
        window.push(topo([]))
        window.push(topo([]))
        window.push(topo([]))
        assert window.round_index == 3
        assert window.window_length == 2

    def test_over_classmethod(self):
        topologies = [topo([(0, 1)]), topo([(1, 2)]), topo([(1, 2), (2, 3)])]
        window = SlidingWindow.over(topologies, T=2)
        assert window.intersection_edges() == frozenset({(1, 2)})
        assert window.history() == tuple(topologies[1:])


class TestAgainstBruteForce:
    def test_matches_direct_computation(self, rng_factory):
        rng = rng_factory.stream("window-brute")
        nodes = list(range(6))
        all_edges = [(i, j) for i in nodes for j in nodes if i < j]
        topologies = []
        for _ in range(12):
            mask = rng.random(len(all_edges)) < 0.4
            edges = [e for e, keep in zip(all_edges, mask) if keep]
            topologies.append(Topology(nodes, edges))
        T = 4
        window = SlidingWindow(T)
        for r, topology in enumerate(topologies, start=1):
            snap = window.push(topology)
            lo = max(0, r - T)
            expected_union = set()
            expected_intersection = set(topologies[lo].edges)
            for t in topologies[lo:r]:
                expected_union |= t.edges
                expected_intersection &= t.edges
            assert snap.union.edges == frozenset(expected_union)
            assert snap.intersection.edges == frozenset(expected_intersection)
