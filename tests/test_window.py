"""Unit tests for the incremental sliding window (Definition 2.1 machinery)."""

import pytest

from repro.errors import ConfigurationError
from repro.dynamics.topology import Topology, TopologyDelta
from repro.dynamics.window import SlidingWindow


def topo(edges, nodes=range(4)):
    return Topology(nodes, edges)


class TestSlidingWindowBasics:
    def test_invalid_window_size(self):
        with pytest.raises(ConfigurationError):
            SlidingWindow(0)

    def test_empty_window(self):
        window = SlidingWindow(3)
        assert window.window_length == 0
        assert window.intersection_nodes() == frozenset()
        assert window.union_edges() == frozenset()

    def test_single_round(self):
        window = SlidingWindow(3)
        snap = window.push(topo([(0, 1), (2, 3)]))
        assert snap.intersection.edges == frozenset({(0, 1), (2, 3)})
        assert snap.union.edges == frozenset({(0, 1), (2, 3)})
        assert snap.window_length == 1

    def test_intersection_and_union(self):
        window = SlidingWindow(2)
        window.push(topo([(0, 1)]))
        snap = window.push(topo([(0, 1), (1, 2)]))
        assert snap.intersection.edges == frozenset({(0, 1)})
        assert snap.union.edges == frozenset({(0, 1), (1, 2)})

    def test_eviction(self):
        window = SlidingWindow(2)
        window.push(topo([(0, 1)]))
        window.push(topo([(1, 2)]))
        snap = window.push(topo([(2, 3)]))
        # Round 1's edge (0,1) left the window.
        assert (0, 1) not in snap.union.edges
        assert snap.union.edges == frozenset({(1, 2), (2, 3)})
        assert snap.intersection.edges == frozenset()

    def test_node_intersection(self):
        window = SlidingWindow(2)
        window.push(Topology([0, 1], [(0, 1)]))
        snap = window.push(Topology([0, 1, 2], [(0, 1), (1, 2)]))
        # Node 2 was not awake in the first round of the window, so it is not
        # in V^{T∩}; the union edge set is nevertheless unrestricted
        # (Definition 2.1 / "neighbours seen during the window").
        assert snap.intersection.nodes == frozenset({0, 1})
        assert (1, 2) in snap.union.edges

    def test_union_edges_unrestricted(self):
        window = SlidingWindow(2)
        window.push(Topology([0, 1], [(0, 1)]))
        window.push(Topology([0, 1, 2], [(1, 2)]))
        assert window.union_edges() == frozenset({(0, 1), (1, 2)})
        assert window.union_edges_all() == window.union_edges()

    def test_union_degree_counts_all_neighbours_seen(self):
        window = SlidingWindow(3)
        window.push(topo([(0, 1)]))
        window.push(topo([(0, 2)]))
        window.push(topo([(0, 3)]))
        assert window.union_degree(0) == 3
        assert window.union_degree(1) == 1
        assert window.union_degree(99) == 0

    def test_round_index_advances(self):
        window = SlidingWindow(2)
        assert window.round_index == 0
        window.push(topo([]))
        window.push(topo([]))
        window.push(topo([]))
        assert window.round_index == 3
        assert window.window_length == 2

    def test_over_classmethod(self):
        topologies = [topo([(0, 1)]), topo([(1, 2)]), topo([(1, 2), (2, 3)])]
        window = SlidingWindow.over(topologies, T=2)
        assert window.intersection_edges() == frozenset({(1, 2)})
        assert window.history() == tuple(topologies[1:])


class TestAgainstBruteForce:
    def test_matches_direct_computation(self, rng_factory):
        rng = rng_factory.stream("window-brute")
        nodes = list(range(6))
        all_edges = [(i, j) for i in nodes for j in nodes if i < j]
        topologies = []
        for _ in range(12):
            mask = rng.random(len(all_edges)) < 0.4
            edges = [e for e, keep in zip(all_edges, mask) if keep]
            topologies.append(Topology(nodes, edges))
        T = 4
        window = SlidingWindow(T)
        for r, topology in enumerate(topologies, start=1):
            snap = window.push(topology)
            lo = max(0, r - T)
            expected_union = set()
            expected_intersection = set(topologies[lo].edges)
            for t in topologies[lo:r]:
                expected_union |= t.edges
                expected_intersection &= t.edges
            assert snap.union.edges == frozenset(expected_union)
            assert snap.intersection.edges == frozenset(expected_intersection)


def _random_topologies(rng, *, n=8, rounds=16, node_churn=True):
    """A random topology sequence with edge churn and (optional) node churn."""
    all_nodes = list(range(n))
    topologies = []
    for _ in range(rounds):
        if node_churn:
            awake = [v for v in all_nodes if rng.random() < 0.8] or [0]
        else:
            awake = all_nodes
        candidates = [(u, v) for u in awake for v in awake if u < v]
        mask = rng.random(len(candidates)) < 0.35
        topologies.append(Topology(awake, [e for e, keep in zip(candidates, mask) if keep]))
    return topologies


def _brute_force(topologies, r, T):
    """(nodes∩, edges∩, edges∪) of round ``r`` recomputed from scratch."""
    window = topologies[max(0, r - T) : r]
    inter_nodes = set(window[0].nodes)
    inter_edges = set(window[0].edges)
    union_edges = set()
    for topo in window:
        inter_nodes &= topo.nodes
        inter_edges &= topo.edges
        union_edges |= topo.edges
    return inter_nodes, inter_edges, union_edges


class TestDeltaPath:
    """The delta-aware push is equivalent to the snapshot push (satellite)."""

    @pytest.mark.parametrize("T", [1, 2, 3, 5])
    def test_delta_push_equals_snapshot_push(self, rng_factory, T):
        rng = rng_factory.stream("window-delta", T)
        topologies = _random_topologies(rng)
        by_snapshot = SlidingWindow(T)
        by_delta = SlidingWindow(T)
        previous = Topology([], [])
        for r, topology in enumerate(topologies, start=1):
            snap_a = by_snapshot.push(topology)
            snap_b = by_delta.push(previous.delta_to(topology))
            previous = topology
            assert snap_a.intersection == snap_b.intersection
            assert snap_a.union == snap_b.union
            assert snap_a.window_length == snap_b.window_length
            expected = _brute_force(topologies, r, T)
            for window in (by_snapshot, by_delta):
                assert window.intersection_nodes() == frozenset(expected[0])
                assert window.intersection_edges() == frozenset(expected[1])
                assert window.union_edges() == frozenset(expected[2])

    def test_mixed_pushes(self, rng_factory):
        """Interleaving snapshot and delta pushes keeps the window coherent."""
        rng = rng_factory.stream("window-mixed")
        topologies = _random_topologies(rng, rounds=20)
        T = 3
        window = SlidingWindow(T)
        previous = Topology([], [])
        for r, topology in enumerate(topologies, start=1):
            if r % 2:
                window.advance(previous.delta_to(topology), topology)
            else:
                window.advance(topology)
            previous = topology
            expected = _brute_force(topologies, r, T)
            assert window.intersection_nodes() == frozenset(expected[0])
            assert window.intersection_edges() == frozenset(expected[1])
            assert window.union_edges() == frozenset(expected[2])
            assert window.history() == tuple(topologies[max(0, r - T) : r])

    def test_push_delta_doctest_shape(self):
        window = SlidingWindow(2)
        window.push(Topology([0, 1, 2], [(0, 1)]))
        snap = window.push(TopologyDelta(added_edges=[(1, 2)]))
        assert snap.intersection.edges == frozenset({(0, 1)})
        assert snap.union.edges == frozenset({(0, 1), (1, 2)})

    def test_rejects_non_topology_items(self):
        with pytest.raises(ConfigurationError):
            SlidingWindow(2).push(42)

    def test_union_degree_after_deltas(self):
        window = SlidingWindow(3)
        window.push(Topology([0, 1, 2, 3], [(0, 1)]))
        window.push(TopologyDelta(added_edges=[(0, 2)], removed_edges=[(0, 1)]))
        window.push(TopologyDelta(added_edges=[(0, 3)]))
        assert window.union_degree(0) == 3
        window.push(TopologyDelta())  # (0,1)'s last presence (round 1) leaves
        assert window.union_degree(0) == 2

    def test_over_accepts_deltas(self):
        items = [
            Topology([0, 1, 2], [(0, 1)]),
            TopologyDelta(added_edges=[(1, 2)]),
            TopologyDelta(removed_edges=[(0, 1)]),
        ]
        window = SlidingWindow.over(items, T=2)
        assert window.union_edges() == frozenset({(0, 1), (1, 2)})
        assert window.intersection_edges() == frozenset({(1, 2)})
