"""The content-addressed results store: hashing, idempotence, provenance, diff."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.scenarios.store import (
    FORMAT_VERSION,
    ResultsStore,
    canonical_json,
    content_key,
    diff_rows,
    diff_stores,
)
from repro.version import __version__

KEY = {"experiment": "e99", "scale": "smoke", "params": {"n": 24, "seeds": [0, 1]}}
ROWS = [
    {"n": 24.0, "valid_fraction_mean": 1.0, "setting": "a"},
    {"n": 24.0, "valid_fraction_mean": 0.5, "setting": "b"},
]


class TestContentKey:
    def test_stable_across_dict_key_order(self):
        shuffled = {"params": {"seeds": [0, 1], "n": 24}, "scale": "smoke", "experiment": "e99"}
        assert content_key(KEY) == content_key(shuffled)

    def test_changes_with_any_value(self):
        mutated = {**KEY, "scale": "full"}
        assert content_key(KEY) != content_key(mutated)

    def test_canonical_json_is_compact_and_sorted(self):
        assert canonical_json({"b": 1, "a": [1, 2]}) == '{"a":[1,2],"b":1}'


class TestPut:
    def test_created_then_unchanged(self, tmp_path):
        store = ResultsStore(tmp_path)
        entry, status = store.put("smoke", "e99", KEY, ROWS)
        assert status == "created"
        assert entry.path.exists()
        before = entry.path.read_bytes()

        again, status = store.put("smoke", "e99", KEY, ROWS)
        assert status == "unchanged"
        # Idempotent rerun: the file is byte-for-byte untouched.
        assert again.path.read_bytes() == before

    def test_updated_on_row_drift(self, tmp_path):
        store = ResultsStore(tmp_path)
        entry, _ = store.put("smoke", "e99", KEY, ROWS)
        drifted = [dict(ROWS[0], valid_fraction_mean=0.25), ROWS[1]]
        updated, status = store.put("smoke", "e99", KEY, drifted)
        assert status == "updated"
        assert updated.path == entry.path
        assert store.load(entry.path).rows[0]["valid_fraction_mean"] == 0.25

    def test_provenance_and_schema_populated(self, tmp_path):
        store = ResultsStore(tmp_path)
        entry, _ = store.put("smoke", "e99", KEY, ROWS)
        data = json.loads(entry.path.read_text())
        assert data["format"] == FORMAT_VERSION
        assert data["key"] == KEY
        assert data["key_hash"] == content_key(KEY)
        assert data["provenance"]["repro_version"] == __version__
        assert "git_sha" in data["provenance"]  # best-effort: a sha or null
        assert data["row_schema"] == ["n", "setting", "valid_fraction_mean"]

    def test_file_name_embeds_label_and_hash(self, tmp_path):
        store = ResultsStore(tmp_path)
        entry, _ = store.put("smoke", "e99", KEY, ROWS)
        assert entry.path.name == f"e99-{content_key(KEY)[:12]}.json"

    def test_corrupt_entry_self_heals(self, tmp_path):
        store = ResultsStore(tmp_path)
        entry, _ = store.put("smoke", "e99", KEY, ROWS)
        entry.path.write_text("{truncated")  # e.g. an interrupted earlier run
        healed, status = store.put("smoke", "e99", KEY, ROWS)
        assert status == "updated"
        assert store.load(healed.path).rows == entry.rows

    def test_nan_rows_round_trip(self, tmp_path):
        store = ResultsStore(tmp_path)
        rows = [{"rounds_mean": float("nan")}]
        _, first = store.put("smoke", "nan-case", KEY, rows)
        _, second = store.put("smoke", "nan-case", KEY, rows)
        assert (first, second) == ("created", "unchanged")


class TestDiff:
    def test_diff_rows_catches_a_mutated_cell(self):
        mutated = [dict(ROWS[0], valid_fraction_mean=0.0), ROWS[1]]
        problems = diff_rows(ROWS, mutated)
        assert len(problems) == 1
        assert "valid_fraction_mean" in problems[0]
        assert diff_rows(ROWS, [dict(r) for r in ROWS]) == []

    def test_diff_rows_reports_schema_and_count_changes(self):
        problems = diff_rows(ROWS, [dict(ROWS[0], extra=1.0)])
        assert any("row count" in p for p in problems)
        assert any("columns added: ['extra']" in p for p in problems)

    def test_diff_stores_clean_on_copies(self, tmp_path):
        a, b = ResultsStore(tmp_path / "a"), ResultsStore(tmp_path / "b")
        a.put("smoke", "e99", KEY, ROWS)
        b.put("smoke", "e99", KEY, ROWS)
        assert diff_stores(a, b).clean

    def test_diff_stores_flags_missing_extra_and_changed(self, tmp_path):
        a, b = ResultsStore(tmp_path / "a"), ResultsStore(tmp_path / "b")
        a.put("smoke", "only-in-a", KEY, ROWS)
        a.put("smoke", "shared", KEY, ROWS)
        b.put("smoke", "shared", KEY, [dict(ROWS[0], n=999.0), ROWS[1]])
        b.put("smoke", "only-in-b", KEY, ROWS)
        diff = diff_stores(a, b)
        assert not diff.clean
        assert diff.missing == ["smoke/only-in-a"]
        assert diff.extra == ["smoke/only-in-b"]
        assert list(diff.changed) == ["smoke/shared"]
        assert "n: 24.0 -> 999.0" in diff.describe()

    def test_diff_stores_reports_key_change(self, tmp_path):
        a, b = ResultsStore(tmp_path / "a"), ResultsStore(tmp_path / "b")
        a.put("smoke", "e99", KEY, ROWS)
        b.put("smoke", "e99", {**KEY, "params": {"n": 48}}, ROWS)
        diff = diff_stores(a, b)
        assert any("key changed" in p for p in diff.changed["smoke/e99"])


class TestLoad:
    def test_rejects_foreign_format(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format": "something-else", "rows": []}))
        with pytest.raises(ConfigurationError, match="unsupported store entry format"):
            ResultsStore.load(path)

    def test_entries_iterates_kinds_in_order(self, tmp_path):
        store = ResultsStore(tmp_path)
        store.put("smoke", "one", KEY, ROWS)
        store.put("experiments", "two", {**KEY, "scale": "full"}, ROWS)
        assert [e.kind for e in store.entries()] == ["experiments", "smoke"]
        assert [e.kind for e in store.entries("smoke")] == ["smoke"]
