"""The array-native round kernel (vectorized compose/deliver/output).

Hard gates of the kernel PR:

* the kernel delivery path produces **byte-identical trace rows** to the
  authoritative full path for every kernel-capable algorithm × every
  registered adversary (both the array engine, when the adversary ships a
  :class:`KernelPlan`, and the generic CSR engine when it does not);
* ``REPRO_VERIFY_KERNEL=1`` catches a kernel whose semantics drift from
  the python algorithm it claims to mirror;
* kernel selection honours the eligibility rules (pure contract, no input
  vector, explicit requests degrade — never silently corrupt);
* the satellites: quiescence-aware churn skipping is observationally
  invisible, CSR build + delta round-trips match a from-scratch rebuild
  for every topology family × adversary stream, and the numpy floor is
  enforced at import time and consistent with ``pyproject.toml``.
"""

import pathlib
import tomllib

import numpy as np
import pytest

import repro.kernel as kernel_pkg
from repro.errors import ConfigurationError, SimulationError
from repro.dynamics import generators
from repro.dynamics.adversaries.scripted import StaticAdversary
from repro.dynamics.churn import MarkovEdgeChurn, StaticChurn, quiescence_skip
from repro.dynamics.topology import TopologyDelta
from repro.kernel import CSRAdjacency, EdgeUniverse
from repro.kernel.engine import ArrayKernelEngine, GenericKernelEngine
from repro.kernel.mis import SMisKernel
from repro.runtime.algorithm import DistributedAlgorithm
from repro.runtime.simulator import Simulator, delivery_mode
from repro.scenarios import ScenarioSpec, component
from repro.scenarios.executor import (
    VERIFY_KERNEL_ENV,
    _build_context,
    run_scenario_seed,
)

from test_incremental_delivery import _ADVERSARY_SPECS, _trace_rows

#: the four algorithms that ship a hand-vectorised kernel (``as_kernel()``).
KERNEL_ALGORITHMS = ("basic-coloring", "scolor", "smis", "dmis")


# ---------------------------------------------------------------------------
# kernel × adversary equivalence matrix
# ---------------------------------------------------------------------------


class TestKernelEquivalenceMatrix:
    @pytest.mark.parametrize("algorithm", KERNEL_ALGORITHMS)
    def test_kernel_and_full_rows_identical(self, algorithm):
        """Every kernel algorithm × every registered adversary: byte-identical.

        Forcing ``delivery="kernel"`` exercises the array engine for
        plan-capable adversaries and the generic CSR engine for the rest,
        so the whole matrix covers both engines.
        """
        for adversary in sorted(_ADVERSARY_SPECS):
            spec = ScenarioSpec(
                n=16,
                algorithm=algorithm,
                adversary=_ADVERSARY_SPECS[adversary],
                topology="gnp",
                rounds=12,
            )
            full_rows, _ = _trace_rows(spec, seed=7, mode="full")
            kernel_rows, sim = _trace_rows(spec, seed=7, mode="kernel")
            assert sim.delivery == "kernel", f"{algorithm} × {adversary} degraded"
            assert kernel_rows == full_rows, (
                f"kernel delivery diverged for {algorithm} × {adversary}"
            )

    def test_matrix_exercises_both_engines(self):
        """The matrix above must cover the array AND the generic engine."""
        engines = {}
        for adversary in ("markov-churn", "mobility"):
            spec = ScenarioSpec(
                n=16,
                algorithm="smis",
                adversary=_ADVERSARY_SPECS[adversary],
                topology="gnp",
                rounds=4,
            )
            _, sim = _trace_rows(spec, seed=7, mode="kernel")
            engines[adversary] = type(sim._kernel_engine)
        assert engines["markov-churn"] is ArrayKernelEngine
        assert engines["mobility"] is GenericKernelEngine

    @pytest.mark.parametrize("wakeup", ["staggered", "uniform-random"])
    def test_equivalence_under_async_wakeup(self, wakeup):
        for algorithm in KERNEL_ALGORITHMS:
            spec = ScenarioSpec(
                n=24,
                algorithm=algorithm,
                adversary=component("flip-churn", flip_prob=0.08),
                topology="gnp",
                rounds=20,
                wakeup=wakeup,
            )
            full_rows, _ = _trace_rows(spec, seed=2, mode="full")
            kernel_rows, _ = _trace_rows(spec, seed=2, mode="kernel")
            assert kernel_rows == full_rows

    def test_chunked_runs_match_single_run(self):
        """``run(1)`` in a loop must equal one ``run(12)`` on the kernel path."""
        spec = ScenarioSpec(
            n=16,
            algorithm="scolor",
            adversary=component("markov-churn", p_off=0.05, p_on=0.05),
            topology="gnp",
            rounds=12,
        )
        whole_rows, _ = _trace_rows(spec, seed=3, mode="kernel")
        with delivery_mode("kernel"):
            ctx = _build_context(spec, 3)
            sim = Simulator(
                n=ctx.n, algorithm=ctx.algorithm, adversary=ctx.adversary, seed=ctx.seed
            )
            for _ in range(ctx.rounds):
                sim.run(1)
        chunk_rows = [
            (
                record.round_index,
                record.topology.nodes,
                record.topology.edges,
                dict(record.outputs),
                record.metrics.as_dict(),
            )
            for record in sim.trace
        ]
        assert chunk_rows == whole_rows


# ---------------------------------------------------------------------------
# kernel selection + spec knob
# ---------------------------------------------------------------------------


class _PureNoKernel(DistributedAlgorithm):
    """Pure contract but no ``as_kernel`` — must stay on incremental."""

    name = "pure-no-kernel"
    message_stability = "pure"

    def on_wake(self, v):
        pass

    def compose(self, v):
        return None

    def compose_fingerprint(self, v):
        return None

    def deliver(self, v, inbox):
        pass

    def output(self, v):
        return 0


class TestKernelSelection:
    def _sim(self, algorithm, **kwargs):
        return Simulator(
            n=4, algorithm=algorithm, adversary=StaticAdversary(generators.ring(4)), **kwargs
        )

    def test_explicit_kernel_degrades_without_a_kernel(self):
        # Pure algorithm without as_kernel: incremental, not an error.
        assert self._sim(_PureNoKernel(), delivery="kernel").delivery == "incremental"

        class Legacy(_PureNoKernel):
            message_stability = "none"

        # No purity contract: the kernel may not skip anything — full path.
        assert self._sim(Legacy(), delivery="kernel").delivery == "full"

    def test_input_vector_disables_the_kernel(self):
        from repro.algorithms.mis.smis import SMis

        assert self._sim(SMis(), delivery="kernel").delivery == "kernel"
        # Kernels initialise wake state vectorised for the ⊥-input case only.
        sim = self._sim(SMis(), delivery="kernel", input_assignment={0: 1})
        assert sim.delivery == "incremental"

    def test_spec_rejects_bogus_delivery(self):
        with pytest.raises(ConfigurationError, match="delivery"):
            ScenarioSpec(n=8, algorithm="smis", delivery="vectorized")

    def test_spec_delivery_round_trips_and_reaches_the_simulator(self):
        from repro.scenarios.executor import _execute_seed

        base = ScenarioSpec(
            n=12,
            algorithm="smis",
            adversary=component("markov-churn", p_off=0.05, p_on=0.05),
            rounds=3,
        )
        assert base.to_dict()["delivery"] is None
        assert base.replace(delivery="kernel").to_dict()["delivery"] == "kernel"
        for requested, expected in (
            (None, "kernel"),  # auto: markov-churn ships a KernelPlan
            ("full", "full"),
            ("incremental", "incremental"),
            ("kernel", "kernel"),
        ):
            _, sim = _execute_seed(base.replace(delivery=requested), 0)
            assert sim.delivery == expected, f"delivery={requested!r}"


# ---------------------------------------------------------------------------
# REPRO_VERIFY_KERNEL catches drifting kernels
# ---------------------------------------------------------------------------


class TestKernelVerificationHarness:
    def _spec(self):
        return ScenarioSpec(
            n=12,
            algorithm="smis",
            adversary=component("markov-churn", p_off=0.05, p_on=0.05),
            rounds=10,
            delivery="kernel",
            metrics=("trace-summary",),
        )

    def test_verify_flag_catches_a_broken_kernel(self, monkeypatch):
        monkeypatch.setenv(VERIFY_KERNEL_ENV, "1")
        # A kernel that silently drops every delivery drifts from the python
        # SMis semantics; the harness must blame the kernel path.
        monkeypatch.setattr(SMisKernel, "deliver", lambda *args, **kwargs: None)
        with pytest.raises(SimulationError, match="kernel"):
            run_scenario_seed(self._spec(), 0)

    def test_verify_flag_passes_the_honest_kernels(self, monkeypatch):
        monkeypatch.setenv(VERIFY_KERNEL_ENV, "1")
        verified = run_scenario_seed(self._spec(), 1)
        monkeypatch.delenv(VERIFY_KERNEL_ENV)
        assert verified == run_scenario_seed(self._spec(), 1)


# ---------------------------------------------------------------------------
# quiescence-aware churn skipping is observationally invisible
# ---------------------------------------------------------------------------


class TestQuiescence:
    def test_static_churn_quiescent_after_priming(self):
        churn = StaticChurn(generators.ring(6))
        assert not churn.quiescent()
        churn.step_delta(1, np.random.default_rng(0))
        assert churn.quiescent()
        churn.reset()
        assert not churn.quiescent()

    def test_markov_churn_quiescent_only_when_absorbing(self):
        base = generators.ring(6)
        rng = np.random.default_rng(0)
        frozen = MarkovEdgeChurn(base, p_off=0.0, p_on=0.0)
        assert not frozen.quiescent()  # the priming delta is still owed
        frozen.step_delta(1, rng)
        assert frozen.quiescent()
        live = MarkovEdgeChurn(base, p_off=0.2, p_on=0.2)
        live.step_delta(1, rng)
        assert not live.quiescent()

    @pytest.mark.parametrize("mode", ["full", "incremental", "kernel"])
    def test_skip_is_invisible_in_the_trace(self, mode):
        """Skipping the RNG draw of an absorbed process must not change rows."""
        for adversary in (
            component("static"),
            component("markov-churn", p_off=0.0, p_on=0.0),
            component("markov-churn", p_off=0.05, p_on=0.05),
        ):
            spec = ScenarioSpec(
                n=16, algorithm="smis", adversary=adversary, topology="gnp", rounds=10
            )
            with quiescence_skip(True):
                skipped_rows, _ = _trace_rows(spec, seed=5, mode=mode)
            with quiescence_skip(False):
                stepped_rows, _ = _trace_rows(spec, seed=5, mode=mode)
            assert skipped_rows == stepped_rows


# ---------------------------------------------------------------------------
# CSR structures: build + incremental delta round-trip
# ---------------------------------------------------------------------------


def _assert_same_adjacency(maintained: CSRAdjacency, rebuilt: CSRAdjacency):
    m_rows, m_ptr, m_idx = maintained.to_indptr_indices()
    r_rows, r_ptr, r_idx = rebuilt.to_indptr_indices()
    assert np.array_equal(m_rows, r_rows)
    assert np.array_equal(m_ptr, r_ptr)
    assert np.array_equal(m_idx, r_idx)


class TestCSRProperties:
    @pytest.mark.parametrize("topology", ["gnp", "ring", "geometric"])
    @pytest.mark.parametrize(
        "adversary", ["flip-churn", "edge-insertion", "burst-churn", "mobility"]
    )
    def test_delta_maintenance_matches_rebuild(self, topology, adversary):
        """``apply_delta`` over a real adversary stream == from-scratch build."""
        spec = ScenarioSpec(
            n=20,
            algorithm="smis",
            adversary=_ADVERSARY_SPECS[adversary],
            topology=topology,
            rounds=10,
        )
        _, sim = _trace_rows(spec, seed=11, mode="full")
        records = list(sim.trace)
        maintained = CSRAdjacency.from_topology(20, records[0].topology)
        previous = records[0].topology
        for record in records[1:]:
            maintained.apply_delta(TopologyDelta.between(previous, record.topology))
            previous = record.topology
            _assert_same_adjacency(
                maintained, CSRAdjacency.from_topology(20, record.topology)
            )
        # the final adjacency answers the same neighbor queries as the topology
        assert set(maintained.nodes) == set(previous.nodes)
        for v in previous.nodes:
            assert set(maintained.neighbors(v).tolist()) == set(previous.neighbors(v))

    def test_gather_concatenates_sorted_rows(self):
        topo = generators.gnp(12, 0.4, np.random.default_rng(3))
        adj = CSRAdjacency.from_topology(12, topo)
        ids = np.asarray(sorted(topo.nodes), dtype=np.int64)
        seg, nbrs = adj.gather(ids)
        for j, v in enumerate(ids.tolist()):
            row = nbrs[seg == j]
            assert row.tolist() == sorted(topo.neighbors(v))

    def test_empty_and_node_only_deltas(self):
        adj = CSRAdjacency(4)
        assert list(adj.nodes) == []
        seg, nbrs = adj.gather(np.asarray([0, 1], dtype=np.int64))
        assert seg.size == 0 and nbrs.size == 0
        adj.apply_delta(TopologyDelta(added_nodes=(0, 1, 2)))
        adj.apply_delta(TopologyDelta(added_edges=((0, 1), (1, 2))))
        assert adj.neighbors(1).tolist() == [0, 2]
        adj.apply_delta(TopologyDelta(removed_nodes=(2,), removed_edges=((1, 2),)))
        assert adj.neighbors(1).tolist() == [0]
        assert adj.neighbors(2).size == 0

    def test_edge_universe_row_slots(self):
        topo = generators.gnp(16, 0.3, np.random.default_rng(9))
        edges = tuple(sorted(topo.edges))
        universe = EdgeUniverse(16, edges)
        assert universe.m == len(edges)
        ids = np.asarray([0, 3, 7, 15], dtype=np.int64)
        slots, seg = universe.row_slots(ids)
        # every slot belongs to the row it is segmented into...
        assert np.array_equal(universe.usrc[slots], ids[seg])
        # ...rows enumerate neighbors ascending, matching the topology...
        for j, v in enumerate(ids.tolist()):
            row = universe.udst[slots[seg == j]]
            assert row.tolist() == sorted(topo.neighbors(v))
        # ...and uedge maps each slot back to its canonical universe edge.
        for s in slots.tolist():
            u, w = int(universe.usrc[s]), int(universe.udst[s])
            assert edges[int(universe.uedge[s])] == (min(u, w), max(u, w))

    def test_edge_universe_degenerate(self):
        universe = EdgeUniverse(5, ())
        slots, seg = universe.row_slots(np.asarray([0, 4], dtype=np.int64))
        assert slots.size == 0 and seg.size == 0
        assert universe.indptr.tolist() == [0] * 6


# ---------------------------------------------------------------------------
# numpy floor
# ---------------------------------------------------------------------------


class TestNumpyFloor:
    def test_current_numpy_passes(self):
        kernel_pkg._check_numpy_version()

    def test_old_numpy_is_rejected(self, monkeypatch):
        monkeypatch.setattr(np, "__version__", "1.24.3")
        with pytest.raises(ImportError, match="numpy>="):
            kernel_pkg._check_numpy_version()

    def test_floor_matches_pyproject(self):
        pyproject = pathlib.Path(__file__).resolve().parent.parent / "pyproject.toml"
        deps = tomllib.loads(pyproject.read_text())["project"]["dependencies"]
        floor = ".".join(str(part) for part in kernel_pkg._REQUIRED_NUMPY)
        assert f"numpy>={floor}" in deps


# ---------------------------------------------------------------------------
# the activity surface on the kernel path
# ---------------------------------------------------------------------------


class TestKernelActivity:
    def test_lazy_activity_reports_the_kernel_round(self):
        spec = ScenarioSpec(
            n=16,
            algorithm="smis",
            adversary=component("markov-churn", p_off=0.05, p_on=0.05),
            topology="gnp",
            rounds=5,
        )
        with delivery_mode("kernel"):
            ctx = _build_context(spec, 4)
            sim = Simulator(
                n=ctx.n, algorithm=ctx.algorithm, adversary=ctx.adversary, seed=ctx.seed
            )
        sim.run(3)
        activity = sim.last_round_activity
        assert activity.mode == "kernel"
        assert activity.round_index == 3
        # the builder is consumed once; repeated reads return the same object
        assert sim.last_round_activity is activity
        # outputs can only change for nodes that were delivered to
        assert activity.changed_outputs <= activity.delivered
        assert sim.trace.metrics(3).outputs_changed == len(activity.changed_outputs)
        sim.run(1)
        assert sim.last_round_activity.round_index == 4
