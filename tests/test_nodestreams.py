"""The vectorized per-node RNG pool must be bit-identical to ``default_rng``.

The kernels' per-node random draws are contractually
``default_rng(derive_seed(factory_seed, "node", alg_name, v)).random()``
streams (that is what :meth:`DistributedAlgorithm.rng` hands out, and what
the kernel-vs-full byte-identity gates compare through the produced traces).
:class:`~repro.kernel.nodestreams.NodeStreamPool` reimplements SeedSequence
entropy mixing + PCG64 in vectorized numpy; these tests pin it to the numpy
implementation draw by draw, and check the draw-count handoff that lets
``alg.rng(v)`` resume a node's stream after a kernel run.
"""

import numpy as np
import pytest

from repro.kernel.nodestreams import NodeStreamPool, derive_node_seeds
from repro.utils.rng import derive_seed


class TestSeedDerivation:
    @pytest.mark.parametrize("master", [0, 1, 7, 2**31 - 1, 2**63 - 1])
    def test_matches_scalar_derive_seed(self, master):
        ids = np.arange(64, dtype=np.int64)
        batch = derive_node_seeds(master, "smis", ids)
        for v in ids.tolist():
            assert int(batch[v]) == derive_seed(master, "node", "smis", v)


class TestStreamEquality:
    @pytest.mark.parametrize("master", [1, 17, 123456789, 2**62 + 3])
    @pytest.mark.parametrize("component", ["smis", "dmis"])
    def test_interleaved_draws_match_default_rng(self, master, component):
        """Arbitrary subset-draw patterns equal per-node Generator streams."""
        n = 50
        pool = NodeStreamPool(n, master, component)
        reference = {
            v: np.random.default_rng(derive_seed(master, "node", component, v))
            for v in range(n)
        }
        rng = np.random.default_rng(99)
        draws_per_node = {v: 0 for v in range(n)}
        for _ in range(12):
            ids = np.flatnonzero(rng.random(n) < 0.5).astype(np.int64)
            if not ids.size:
                continue
            got = pool.random(ids)
            want = np.array([reference[int(v)].random() for v in ids])
            np.testing.assert_array_equal(got, want)
            for v in ids.tolist():
                draws_per_node[v] += 1
        skips = pool.draw_skips()
        assert skips == {v: c for v, c in draws_per_node.items() if c}

    def test_skip_equals_generator_fast_forward(self):
        """``gen.random(k)`` then ``gen.random()`` == k+1 single draws."""
        seed = derive_seed(5, "node", "smis", 3)
        a = np.random.default_rng(seed)
        b = np.random.default_rng(seed)
        singles = [a.random() for _ in range(6)]
        b.random(5)
        assert b.random() == singles[5]


class TestAlgorithmHandoff:
    def test_kernel_run_leaves_resumable_node_streams(self):
        """After a kernel run, ``alg.rng(v)`` continues where the pool left off."""
        from repro.dynamics import generators
        from repro.dynamics.adversaries.random_churn import ChurnAdversary
        from repro.dynamics.churn import MarkovEdgeChurn
        from repro.runtime.simulator import Simulator, delivery_mode
        from repro.algorithms.mis.smis import SMis

        n, seed = 24, 11
        base = generators.gnp(n, 0.3, np.random.default_rng(seed))
        adversary = ChurnAdversary(
            n, MarkovEdgeChurn(base, p_off=0.2, p_on=0.2), np.random.default_rng(seed + 1)
        )
        with delivery_mode("kernel"):
            sim = Simulator(n=n, algorithm=SMis(), adversary=adversary, seed=seed)
        sim.run(10)
        alg = sim.algorithm
        skips = dict(alg._node_rng_skips)
        assert skips, "a 10-round dense-churn smis run must have drawn node randomness"
        probe = sorted(skips)[0]
        expected_gen = np.random.default_rng(
            derive_seed(alg.config.rng_factory.seed, "node", alg.name, probe)
        )
        expected_gen.random(skips[probe])
        assert alg.rng(probe).random() == expected_gen.random()
