"""Unit tests for :mod:`repro.dynamics.dynamic_graph` (Definition 2.1 semantics)."""

import pytest

from repro.errors import TopologyError
from repro.types import Interval
from repro.dynamics.dynamic_graph import DynamicGraph
from repro.dynamics.topology import Topology


def topo(edges, nodes=range(4)):
    return Topology(nodes, edges)


class TestRecording:
    def test_rejects_bad_n(self):
        with pytest.raises(TopologyError):
            DynamicGraph(0)

    def test_rejects_node_outside_range(self):
        graph = DynamicGraph(3)
        with pytest.raises(TopologyError):
            graph.append(Topology([0, 5], []))

    def test_rejects_shrinking_node_set(self):
        graph = DynamicGraph(4)
        graph.append(Topology([0, 1, 2], []))
        with pytest.raises(TopologyError):
            graph.append(Topology([0, 1], []))

    def test_round_zero_is_empty(self):
        graph = DynamicGraph(4)
        assert graph.topology(0).num_nodes == 0

    def test_round_indexing(self):
        graph = DynamicGraph(4)
        graph.append(topo([(0, 1)]))
        graph.append(topo([(1, 2)]))
        assert graph.last_round == 2
        assert graph.topology(1).edges == frozenset({(0, 1)})
        assert graph.topology(2).edges == frozenset({(1, 2)})
        with pytest.raises(TopologyError):
            graph.topology(3)


class TestWindowQueries:
    def test_definition_21_round_zero_convention(self):
        """For r <= T - 1 the window includes the empty G_0, so both graphs are empty."""
        graph = DynamicGraph(4)
        graph.append(topo([(0, 1)]))
        graph.append(topo([(0, 1)]))
        T = 3
        assert graph.intersection_graph(1, T).num_nodes == 0
        assert graph.intersection_graph(2, T).num_nodes == 0
        assert graph.union_graph(2, T).num_nodes == 0
        graph.append(topo([(0, 1)]))
        # Round 3 is the first round with a full window of T = 3 real rounds.
        assert graph.intersection_graph(3, T).edges == frozenset({(0, 1)})

    def test_intersection_and_union_content(self):
        graph = DynamicGraph(4)
        graph.append(topo([(0, 1), (1, 2)]))
        graph.append(topo([(0, 1), (2, 3)]))
        inter = graph.intersection_graph(2, 2)
        union = graph.union_graph(2, 2)
        assert inter.edges == frozenset({(0, 1)})
        assert union.edges == frozenset({(0, 1), (1, 2), (2, 3)})

    def test_union_edges_include_recently_woken_neighbours(self):
        graph = DynamicGraph(5)
        graph.append(Topology([0, 1], [(0, 1)]))
        graph.append(Topology([0, 1, 2], [(0, 1), (1, 2)]))
        union = graph.union_graph(2, 2)
        # Node 2 woke mid-window: it is not constrained (not in V^{T∩}), but the
        # edge it contributed counts towards node 1's union degree.
        assert graph.intersection_graph(2, 2).nodes == frozenset({0, 1})
        assert (1, 2) in union.edges
        assert union.degree(1) == 2

    def test_window_snapshot(self):
        graph = DynamicGraph(4)
        graph.append(topo([(0, 1)]))
        snap = graph.window_snapshot(1, 1)
        assert snap.intersection.edges == frozenset({(0, 1)})
        assert snap.round_index == 1

    def test_attached_window_matches_direct(self):
        graph = DynamicGraph(4)
        graph.append(topo([(0, 1), (1, 2)]))
        window = graph.attach_window(2)
        graph.append(topo([(1, 2), (2, 3)]))
        assert window.intersection_edges() == frozenset({(1, 2)})
        # Direct query with T = 2 at round 2 does not reach round 0, so both agree.
        assert graph.intersection_graph(2, 2).edges == frozenset({(1, 2)})


class TestStabilityPredicates:
    def test_is_static_on(self):
        graph = DynamicGraph(4)
        graph.append(topo([(0, 1), (2, 3)]))
        graph.append(topo([(0, 1), (1, 2)]))
        graph.append(topo([(0, 1), (1, 2)]))
        assert graph.is_static_on({0, 1}, Interval(1, 3))
        assert not graph.is_static_on({1, 2, 3}, Interval(1, 2))
        assert graph.is_static_on({1, 2, 3}, Interval(2, 3))

    def test_is_static_interval_bounds_checked(self):
        graph = DynamicGraph(4)
        graph.append(topo([]))
        with pytest.raises(TopologyError):
            graph.is_static_on({0}, Interval(1, 5))

    def test_static_ball_interval(self):
        graph = DynamicGraph(6)
        base = Topology(range(6), [(0, 1), (1, 2), (3, 4), (4, 5)])
        changed = Topology(range(6), [(0, 1), (1, 2), (3, 4)])
        graph.append(base)
        graph.append(changed)
        # Ball around 0 (radius 2) = {0,1,2}; its induced edges never change.
        assert graph.static_ball_interval(0, 2, Interval(1, 2))
        # Ball around 5 loses its only edge.
        assert not graph.static_ball_interval(5, 1, Interval(1, 2))


class TestChangeStatistics:
    def test_edge_changes(self):
        graph = DynamicGraph(4)
        graph.append(topo([(0, 1)]))
        graph.append(topo([(1, 2)]))
        inserted, deleted = graph.edge_changes(2)
        assert inserted == frozenset({(1, 2)})
        assert deleted == frozenset({(0, 1)})
        first_inserted, first_deleted = graph.edge_changes(1)
        assert first_inserted == frozenset({(0, 1)}) and first_deleted == frozenset()

    def test_churn_per_round(self):
        graph = DynamicGraph(4)
        graph.append(topo([(0, 1)]))
        graph.append(topo([(1, 2)]))
        assert graph.churn_per_round() == [1, 2]
