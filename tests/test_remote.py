"""Tests for the distributed sweep fabric (``repro.exec.remote``) and its
CLI surfaces (``--backend remote``, ``repro audit``, ``repro repair``,
``repro log --json``).

The loopback transport spawns real worker subprocesses, so every test here
exercises a genuine process boundary: byte-identity against the serial
reference, re-dispatch after a killed worker, timeout recovery after a hung
worker, serial fallback when the whole fleet dies, and the audit → repair →
byte-identical-store loop the CI fabric-smoke job gates on.
"""

import json

import pytest

from repro.errors import ConfigurationError
from repro.exec import (
    ExecutionPolicy,
    RateEstimator,
    build_chunks,
    make_backend,
    run_units,
    units_for_spec,
)
from repro.exec.policy import policy_from_mapping, resolve_policy, use_policy
from repro.exec.progress import ProgressReporter
from repro.exec.remote import (
    WORKER_HANG_ENV,
    WORKER_INTERRUPT_ENV,
    RemoteBackend,
    parse_hosts,
)
from repro.exec.remote.transport import SshTransport, worker_fault_env
from repro.exec.runner import INTERRUPT_ENV
from repro.exec.units import execute_chunk
from repro.scenarios import ScenarioSpec, component
from repro.scenarios.audit import Finding, audit_store, journal_status
from repro.scenarios.store import ResultsStore, canonical_json, content_key


def tiny_spec(**overrides):
    defaults = dict(
        n=16,
        topology="gnp_sparse",
        algorithm="dynamic-coloring",
        adversary=component("flip-churn", flip_prob=0.02),
        rounds=4,
        seeds=(0, 1, 2),
        metrics=(component("validity", problem="coloring"),),
    )
    defaults.update(overrides)
    return ScenarioSpec(**defaults)


@pytest.fixture(scope="module")
def reference():
    """A 12-unit batch plus its serial rows (the byte-identity baseline)."""
    units = units_for_spec(tiny_spec(seeds=tuple(range(12))))
    rows = run_units(units, ExecutionPolicy(backend="serial"))
    return units, canonical_json(rows)


# ---------------------------------------------------------------------------
# transports and hosts
# ---------------------------------------------------------------------------


class TestTransports:
    def test_parse_hosts(self):
        assert parse_hosts(["a", "b=4", " c =2"]) == [("a", 1), ("b", 4), ("c", 2)]

    @pytest.mark.parametrize("bad", [["=3"], ["host=0"], ["host=fast"], [""]])
    def test_parse_hosts_rejects_bad_entries(self, bad):
        with pytest.raises(ConfigurationError):
            parse_hosts(bad)

    def test_ssh_command_shape(self):
        transport = SshTransport(remote_python="python3.11")
        command = transport.command("node-7")
        assert command[:3] == ["ssh", "-o", "BatchMode=yes"]
        assert command[3] == "node-7"
        assert "python3.11 -u -m repro.exec.remote.worker" == command[4]

    def test_ssh_requires_hosts(self):
        with pytest.raises(ConfigurationError, match="hosts"):
            SshTransport().launch(2, None, inbox=None)

    def test_fault_envs_reach_worker_zero_only(self, monkeypatch):
        monkeypatch.setenv(WORKER_INTERRUPT_ENV, "3")
        monkeypatch.setenv(WORKER_HANG_ENV, "5")
        assert worker_fault_env(0)[WORKER_INTERRUPT_ENV] == "3"
        assert WORKER_INTERRUPT_ENV not in worker_fault_env(1)
        assert WORKER_HANG_ENV not in worker_fault_env(2)


# ---------------------------------------------------------------------------
# byte identity
# ---------------------------------------------------------------------------


class TestRemoteByteIdentity:
    def test_remote_rows_byte_identical_to_serial(self, reference):
        units, expected = reference
        policy = ExecutionPolicy(backend="remote", max_workers=2, chunk_size=3)
        assert canonical_json(run_units(units, policy)) == expected

    def test_heterogeneous_slots_fleet(self, reference):
        units, expected = reference
        policy = ExecutionPolicy(backend="remote", hosts=("fast=3", "slow"))
        assert canonical_json(run_units(units, policy)) == expected

    def test_adaptive_split_keeps_rows_identical(self, reference):
        """A near-zero target forces every task down to single-unit pieces;
        reassembly must still hand the runner whole original chunks."""
        units, expected = reference
        chunks = build_chunks(units, 6)
        estimator = RateEstimator()
        estimator.observe_cost(1, 1.0)  # known cost: splitting kicks in at once
        backend = RemoteBackend(2, target_seconds=1e-9, cost_estimator=estimator)
        with backend:
            got = dict(backend.submit_batch(chunks))
        assert backend.stats["splits"] > 0
        rows = [row for index in sorted(got) for row in got[index]]
        assert canonical_json(rows) == expected

    def test_split_ids_survive_noncontiguous_chunk_indices(self, reference):
        """Split-task ids are seeded past the *max* chunk index, so a subset
        batch that preserves original indices (the runner's fallback shape)
        cannot collide with them."""
        units, _ = reference
        chunks = build_chunks(units, 3)[2:]  # indices 2 and 3, not 0..len-1
        estimator = RateEstimator()
        estimator.observe_cost(1, 1.0)  # known cost: splitting kicks in at once
        backend = RemoteBackend(2, target_seconds=1e-9, cost_estimator=estimator)
        with backend:
            got = dict(backend.submit_batch(chunks))
        assert backend.stats["splits"] > 0
        for chunk in chunks:
            serial = execute_chunk((chunk.spec_key, chunk.spec_dict, chunk.seeds))
            assert canonical_json(got[chunk.index]) == canonical_json(serial)


# ---------------------------------------------------------------------------
# fault tolerance
# ---------------------------------------------------------------------------


class TestFaultTolerance:
    def test_killed_worker_chunks_are_redispatched(self, reference, monkeypatch):
        """Worker 0 hard-exits mid-chunk; the survivor absorbs its work."""
        units, expected = reference
        monkeypatch.setenv(WORKER_INTERRUPT_ENV, "2")
        backend = RemoteBackend(2)
        with backend:
            got = dict(backend.submit_batch(build_chunks(units, 3)))
        assert backend.stats["workers_lost"] >= 1
        assert backend.stats["redispatched"] >= 1
        rows = [row for index in sorted(got) for row in got[index]]
        assert canonical_json(rows) == expected

    def test_hung_worker_times_out_and_is_replaced(self, reference, monkeypatch):
        """Worker 0 wedges (alive but silent); the deadline detector kills it
        and re-dispatches its in-flight chunk."""
        units, expected = reference
        monkeypatch.setenv(WORKER_HANG_ENV, "1")
        backend = RemoteBackend(2, task_timeout=5.0, heartbeat_interval=0.5)
        with backend:
            got = dict(backend.submit_batch(build_chunks(units, 3)))
        assert backend.stats["workers_lost"] >= 1
        rows = [row for index in sorted(got) for row in got[index]]
        assert canonical_json(rows) == expected

    def test_whole_fleet_dead_falls_back_to_serial(self, reference, monkeypatch):
        """A single worker that always dies exhausts the fleet; run_units
        recovers through the serial fallback with identical rows."""
        units, expected = reference
        monkeypatch.setenv(WORKER_INTERRUPT_ENV, "1")
        policy = ExecutionPolicy(backend="remote", max_workers=1, chunk_size=3)
        assert canonical_json(run_units(units, policy)) == expected

    def test_worker_loop_lets_signals_propagate(self, reference, monkeypatch):
        """KeyboardInterrupt/SystemExit during a chunk stop the worker instead
        of being swallowed as a chunk error."""
        import io

        from repro.exec.remote import worker as worker_mod

        def boom(*args, **kwargs):
            raise KeyboardInterrupt

        monkeypatch.setattr(worker_mod, "execute_unit", boom)
        units, _ = reference
        request = build_chunks(units[:1], 1)[0].to_wire() + "\n"
        with pytest.raises(KeyboardInterrupt):
            worker_mod.main(io.StringIO(request), io.StringIO())

    def test_idle_wedged_worker_is_reaped_on_missed_pong(self):
        """A ping leaves a pong deadline; a worker that never answers (and
        sends nothing else) is reaped instead of being pinged forever."""
        from repro.exec.remote.dispatcher import _WorkerState

        class _WedgedLink:
            worker_id, name, slots = 0, "wedged", 1

            def __init__(self):
                self.sent = []

            def alive(self):
                return True

            def send(self, text):
                self.sent.append(text)

            def kill(self):
                pass

        backend = RemoteBackend(1, heartbeat_interval=0.0)
        link = _WedgedLink()
        state = _WorkerState(link)
        state.ready = True
        backend._workers = {0: state}
        backend._heartbeat({}, [])  # idle past the interval: ping goes out
        assert link.sent and state.pong_deadline is not None
        state.pong_deadline = 0.0  # the grace lapsed with no line at all
        backend._heartbeat({}, [])
        assert 0 not in backend._workers
        assert backend.stats["workers_lost"] == 1

    def test_worker_side_unit_error_reaches_the_caller(self, reference):
        """A genuine unit failure (unknown component in the worker) is a
        BackendError from the dispatcher, not an endless retry loop."""
        from repro.exec.backends import BackendError

        spec_dict = tiny_spec(seeds=(0,)).to_dict()
        spec_dict["metrics"] = [{"name": "no-such-metric-anywhere", "params": {}}]
        from repro.exec.units import WorkUnit

        unit = WorkUnit(spec_dict=spec_dict, seed=0, spec_key=content_key(spec_dict))
        backend = RemoteBackend(1)
        with backend, pytest.raises(BackendError, match="no-such-metric"):
            list(backend.submit_batch(build_chunks([unit], 1)))


# ---------------------------------------------------------------------------
# policy / options plumbing
# ---------------------------------------------------------------------------


class TestPolicyPlumbing:
    def test_mapping_accepts_transport_and_hosts(self):
        policy = policy_from_mapping(
            {"backend": "remote", "transport": "loopback", "hosts": ["a", "b=2"]}
        )
        assert policy.transport == "loopback"
        assert policy.hosts == ("a", "b=2")
        assert policy.backend_options() == {"transport": "loopback", "hosts": ["a", "b=2"]}

    def test_mapping_rejects_unknown_transport(self):
        with pytest.raises(ConfigurationError, match="loopback"):
            policy_from_mapping({"backend": "remote", "transport": "loopbak"})

    @pytest.mark.parametrize("hosts", ["a,b", ["a", "b=0"], [1, 2]])
    def test_mapping_rejects_bad_hosts(self, hosts):
        with pytest.raises(ConfigurationError):
            policy_from_mapping({"backend": "remote", "hosts": hosts})

    def test_transport_options_rejected_by_local_backends(self):
        with pytest.raises(ConfigurationError, match="transport options"):
            make_backend("process", 2, {"transport": "loopback"})

    def test_extras_are_dropped_by_local_backends(self):
        backend = make_backend("serial", 1, None, extras={"cost_estimator": RateEstimator()})
        assert backend is not None

    def test_single_unit_downgrade_drops_transport_options(self):
        """A one-unit batch under a remote policy downgrades to serial inside
        run_units; the policy's transport/hosts must not reach
        make_backend('serial') (regression: ConfigurationError crash)."""
        units = units_for_spec(tiny_spec(seeds=(0,)))
        expected = canonical_json(run_units(units, ExecutionPolicy(backend="serial")))
        policy = ExecutionPolicy(
            backend="remote", transport="loopback", hosts=("a", "b=2")
        )
        assert canonical_json(run_units(units, policy)) == expected

    def test_serial_gate_drops_transport_options(self):
        # An ambient remote policy gated to serial (parallel=False) must not
        # carry transport/hosts into make_backend — serial rejects them.
        ambient = ExecutionPolicy(
            backend="remote", max_workers=2, transport="loopback", hosts=("a", "b=2")
        )
        with use_policy(ambient):
            gated = resolve_policy(parallel=False)
            assert gated.backend == "serial"
            assert gated.backend_options() == {}
            assert resolve_policy(parallel=True) is ambient


# ---------------------------------------------------------------------------
# rate estimation and progress display
# ---------------------------------------------------------------------------


class TestRateEstimator:
    def test_observed_cost_sets_rate_and_per_unit(self):
        estimator = RateEstimator()
        assert estimator.rate is None and estimator.seconds_per_unit is None
        estimator.observe_cost(10, 1.0)
        assert estimator.seconds_per_unit == pytest.approx(0.1)
        assert estimator.rate == pytest.approx(10.0)

    def test_smoothing_tracks_recent_cost(self):
        estimator = RateEstimator()
        estimator.observe_cost(10, 1.0)
        for _ in range(50):
            estimator.observe_cost(10, 2.0)
        assert estimator.seconds_per_unit == pytest.approx(0.2, rel=0.05)

    def test_progress_uses_estimator_rate(self):
        import io

        estimator = RateEstimator()
        estimator.observe_cost(100, 1.0)  # 10 ms/unit
        stream = io.StringIO()
        reporter = ProgressReporter(
            10, label="demo", enabled=True, stream=stream, rate_source=estimator
        )
        reporter.update(10)
        reporter.finish()
        output = stream.getvalue()
        assert "100.0 rows/s" in output
        assert "~10.0 ms/unit" in output


# ---------------------------------------------------------------------------
# audit / repair / log --json (the store-tree housekeeping loop)
# ---------------------------------------------------------------------------


def _sweep_config(tmp_path, seeds=(0, 1)):
    configs = tmp_path / "configs"
    (configs / "sweeps").mkdir(parents=True)
    config = {
        "kind": "sweep",
        "spec": tiny_spec(seeds=seeds, name="fabric-demo").to_dict(),
        "over": {"adversary.params.flip_prob": [0.0, 0.03, 0.06]},
    }
    path = configs / "sweeps" / "fabric-demo.json"
    path.write_text(json.dumps(config), encoding="utf-8")
    return configs, path


def _entry_sans_provenance(path):
    """Entry payload with provenance stripped — provenance carries wall-clock
    telemetry, so independently computed stores only agree on the rest."""
    data = json.loads(path.read_text(encoding="utf-8"))
    data.pop("provenance", None)
    return canonical_json(data)


class TestAuditRepair:
    def test_audit_missing_store_fails(self, tmp_path):
        from repro.scenarios.cli import main

        assert main(["audit", "--store", str(tmp_path / "absent")]) == 1

    def test_audit_clean_store(self, tmp_path, capsys):
        from repro.scenarios.cli import main

        configs, config_path = _sweep_config(tmp_path)
        store = tmp_path / "store"
        assert main(["sweep", str(config_path), "--store", str(store)]) == 0
        assert main(["audit", "--store", str(store)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_audit_findings_and_json(self, tmp_path, capsys):
        from repro.scenarios.cli import main

        configs, config_path = _sweep_config(tmp_path)
        store = tmp_path / "store"
        assert main(["sweep", str(config_path), "--store", str(store)]) == 0
        (entry,) = (store / "sweeps").glob("*.json")

        # torn write, corrupt entry, key drift, misfiled copy, schema drift
        (store / "sweeps" / "x.json.tmp").write_text("{", encoding="utf-8")
        (store / "sweeps" / "corrupt-000000000000.json").write_text("{", encoding="utf-8")
        data = json.loads(entry.read_text(encoding="utf-8"))
        drifted = dict(data, key_hash="0" * 64)
        (store / "sweeps" / "drift-000000000000.json").write_text(
            json.dumps(drifted), encoding="utf-8"
        )
        (store / "sweeps" / "misfiled-badbadbadbad.json").write_text(
            entry.read_text(encoding="utf-8"), encoding="utf-8"
        )
        schema = dict(data, row_schema=["only_this"])
        (store / "sweeps" / "schema-000000000000.json").write_text(
            json.dumps(schema), encoding="utf-8"
        )

        capsys.readouterr()  # drop the sweep's own table output
        assert main(["audit", "--store", str(store), "--json"]) == 1
        report = json.loads(capsys.readouterr().out)
        categories = {finding["category"] for finding in report["findings"]}
        assert categories == {
            "torn-write",
            "corrupt-entry",
            "key-drift",
            "misfiled",
            "schema-drift",
        }
        assert report["clean"] is False

    def test_interrupted_remote_sweep_audit_repair_byte_identity(self, tmp_path, monkeypatch):
        """The acceptance loop: remote sweep with one worker killed mid-chunk
        and the dispatcher interrupted mid-batch → audit flags the journal →
        repair resumes only the missing units → entry equals the serial one
        byte for byte → audit is clean."""
        from repro.scenarios.cli import main

        configs, config_path = _sweep_config(tmp_path)
        serial_store = tmp_path / "serial"
        remote_store = tmp_path / "remote"
        assert main(["sweep", str(config_path), "--store", str(serial_store)]) == 0

        monkeypatch.setenv(WORKER_INTERRUPT_ENV, "1")  # worker 0 dies mid-chunk
        monkeypatch.setenv(INTERRUPT_ENV, "3")  # then the dispatcher dies
        code = main(
            ["sweep", str(config_path), "--store", str(remote_store),
             "--backend", "remote", "--workers", "2", "--chunk-size", "1"]
        )
        assert code == 130
        monkeypatch.delenv(WORKER_INTERRUPT_ENV)
        monkeypatch.delenv(INTERRUPT_ENV)

        assert main(["audit", "--store", str(remote_store)]) == 1
        assert main(
            ["repair", "--store", str(remote_store), "--configs", str(configs),
             "--backend", "remote", "--workers", "2"]
        ) == 0
        assert main(["audit", "--store", str(remote_store)]) == 0

        (entry_a,) = sorted((serial_store / "sweeps").glob("*.json"))
        (entry_b,) = sorted((remote_store / "sweeps").glob("*.json"))
        assert entry_a.name == entry_b.name
        assert _entry_sans_provenance(entry_a) == _entry_sans_provenance(entry_b)

    def test_resume_tolerates_torn_journal_line(self, tmp_path, monkeypatch):
        """A torn final journal line (kill mid-write) must not poison the
        resume: the store entry still equals the uninterrupted run's."""
        from repro.scenarios.cli import main

        configs, config_path = _sweep_config(tmp_path)
        straight = tmp_path / "straight"
        resumed = tmp_path / "resumed"
        assert main(["sweep", str(config_path), "--store", str(straight)]) == 0

        monkeypatch.setenv(INTERRUPT_ENV, "2")
        assert main(
            ["sweep", str(config_path), "--store", str(resumed),
             "--backend", "remote", "--workers", "2", "--chunk-size", "1"]
        ) == 130
        monkeypatch.delenv(INTERRUPT_ENV)
        (journal,) = (resumed / ".journals").glob("*.jsonl")
        with journal.open("a", encoding="utf-8") as handle:
            handle.write('{"i": 5, "u": "torn-mid-wr')  # no newline: torn
        status = journal_status(journal)
        assert status["torn"] is True

        assert main(
            ["sweep", str(config_path), "--store", str(resumed),
             "--backend", "remote", "--workers", "2", "--resume"]
        ) == 0
        (entry_a,) = sorted((straight / "sweeps").glob("*.json"))
        (entry_b,) = sorted((resumed / "sweeps").glob("*.json"))
        assert _entry_sans_provenance(entry_a) == _entry_sans_provenance(entry_b)

    def test_repair_dry_run_and_unmatched_journal(self, tmp_path, capsys, monkeypatch):
        from repro.scenarios.cli import main

        configs, config_path = _sweep_config(tmp_path)
        store = tmp_path / "store"
        monkeypatch.setenv(INTERRUPT_ENV, "2")
        assert main(
            ["sweep", str(config_path), "--store", str(store), "--chunk-size", "1"]
        ) == 130
        monkeypatch.delenv(INTERRUPT_ENV)

        assert main(
            ["repair", "--store", str(store), "--configs", str(configs), "--dry-run"]
        ) == 0
        assert "would repair" in capsys.readouterr().out

        orphan = store / ".journals" / ("ff" * 12 + ".jsonl")
        orphan.write_text(
            json.dumps({"format": "repro-journal/1", "total": 4}) + "\n", encoding="utf-8"
        )
        assert main(["repair", "--store", str(store), "--configs", str(configs)]) == 1
        assert "unmatched journal" in capsys.readouterr().err
        assert list((store / ".journals").glob("*.jsonl")) == [orphan]  # orphan remains

    def test_repair_removes_torn_writes(self, tmp_path, capsys):
        from repro.scenarios.cli import main

        configs, config_path = _sweep_config(tmp_path)
        store = tmp_path / "store"
        assert main(["sweep", str(config_path), "--store", str(store)]) == 0
        scratch = store / "sweeps" / "x.json.tmp"
        scratch.write_text("{", encoding="utf-8")
        assert main(["repair", "--store", str(store), "--configs", str(configs)]) == 0
        assert not scratch.exists()

    def test_log_json(self, tmp_path, capsys):
        from repro.scenarios.cli import main

        configs, config_path = _sweep_config(tmp_path)
        store = tmp_path / "store"
        assert main(["sweep", str(config_path), "--store", str(store)]) == 0
        capsys.readouterr()  # drop the sweep's own table output
        assert main(["log", "--store", str(store), "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["total"] == 1
        (entry,) = report["entries"]
        assert entry["label"] == "fabric-demo"
        assert entry["rows"] == 6

    def test_audit_store_api_reports_interrupted_counts(self, tmp_path, monkeypatch):
        from repro.scenarios.cli import main

        configs, config_path = _sweep_config(tmp_path)
        store = tmp_path / "store"
        monkeypatch.setenv(INTERRUPT_ENV, "2")
        assert main(
            ["sweep", str(config_path), "--store", str(store), "--chunk-size", "1"]
        ) == 130
        monkeypatch.delenv(INTERRUPT_ENV)
        findings = audit_store(store)
        assert [finding.category for finding in findings] == ["interrupted"]
        assert "2/6 units complete" in findings[0].message
        assert isinstance(findings[0], Finding)
