"""Tests of the T-dynamic solution checker (sliding-window feasibility)."""

import pytest

from repro.errors import ConfigurationError
from repro.dynamics.dynamic_graph import DynamicGraph
from repro.dynamics.topology import Topology
from repro.problems import TDynamicSpec, coloring_problem_pair, mis_problem_pair
from repro.runtime.metrics import RoundMetrics
from repro.runtime.trace import ExecutionTrace


def _metrics(r):
    return RoundMetrics(r, 0, 0, 0, 0, 0, 0, 0)


class TestCheckRound:
    def test_window_size_validated(self):
        with pytest.raises(ConfigurationError):
            TDynamicSpec(coloring_problem_pair(), 0)

    def test_early_rounds_unconstrained(self):
        """Per Definition 2.1, rounds r < T have an empty window (G_0 included)."""
        graph = DynamicGraph(3)
        graph.append(Topology([0, 1], [(0, 1)]))
        spec = TDynamicSpec(coloring_problem_pair(), T=3)
        result = spec.check_round(graph, {0: None, 1: None}, 1)
        assert result.constrained_nodes == 0
        assert result.is_valid

    def test_packing_checked_on_intersection(self):
        graph = DynamicGraph(3)
        # Edge (0,1) present in round 1 only; (1,2) present in both.
        graph.append(Topology([0, 1, 2], [(0, 1), (1, 2)]))
        graph.append(Topology([0, 1, 2], [(1, 2)]))
        spec = TDynamicSpec(coloring_problem_pair(), T=2)
        # Same colour on 0 and 1 is fine (edge not in intersection), same on 1, 2 is not.
        ok = spec.check_round(graph, {0: 1, 1: 1, 2: 2}, 2)
        assert ok.is_valid
        bad = spec.check_round(graph, {0: 2, 1: 1, 2: 1}, 2)
        assert not bad.is_valid and set(bad.packing_violations) == {1, 2}

    def test_covering_checked_on_union(self):
        graph = DynamicGraph(3)
        graph.append(Topology([0, 1, 2], [(0, 1), (0, 2)]))
        graph.append(Topology([0, 1, 2], []))
        spec = TDynamicSpec(coloring_problem_pair(), T=2)
        # Node 0 has union degree 2, so colour 3 is allowed; colour 4 is not.
        assert spec.check_round(graph, {0: 3, 1: 1, 2: 1}, 2).is_valid
        result = spec.check_round(graph, {0: 4, 1: 1, 2: 1}, 2)
        assert result.covering_violations == (0,)

    def test_undecided_constrained_node_is_violation(self):
        graph = DynamicGraph(2)
        graph.append(Topology([0, 1], [(0, 1)]))
        spec = TDynamicSpec(mis_problem_pair(), T=1)
        result = spec.check_round(graph, {0: 1, 1: None}, 1)
        assert result.undecided_nodes == (1,)
        assert not result.is_valid
        assert result.num_violations == 1

    def test_mis_pair_on_windows(self):
        graph = DynamicGraph(3)
        graph.append(Topology([0, 1, 2], [(0, 1)]))
        graph.append(Topology([0, 1, 2], [(1, 2)]))
        spec = TDynamicSpec(mis_problem_pair(), T=2)
        # 0 and 2 in the MIS, 1 dominated: intersection graph has no edges, so
        # independence is trivial; union graph gives node 1 a dominator.
        assert spec.check_round(graph, {0: 1, 1: 0, 2: 1}, 2).is_valid
        # Node 0 dominated without any MIS neighbour in the union graph.
        result = spec.check_round(graph, {0: 0, 1: 0, 2: 1}, 2)
        assert 0 in result.covering_violations


class TestTraceChecks:
    def _trace(self):
        trace = ExecutionTrace(3, "alg", "adv")
        topo = Topology([0, 1, 2], [(0, 1), (1, 2)])
        trace.record(topo, {0: 1, 1: 2, 2: 1}, _metrics(1))
        trace.record(topo, {0: 1, 1: 2, 2: 1}, _metrics(2))
        trace.record(topo, {0: 1, 1: 1, 2: 1}, _metrics(3))  # conflict in round 3
        return trace

    def test_check_trace_and_summary(self):
        spec = TDynamicSpec(coloring_problem_pair(), T=1)
        results = spec.check_trace(self._trace())
        assert [r.is_valid for r in results] == [True, True, False]
        summary = spec.validity_summary(self._trace())
        assert summary["rounds_checked"] == 3.0
        assert summary["valid_rounds"] == 2.0
        assert 0 < summary["valid_fraction"] < 1

    def test_empty_summary(self):
        spec = TDynamicSpec(coloring_problem_pair(), T=1)
        trace = ExecutionTrace(2, "alg", "adv")
        summary = spec.validity_summary(trace)
        assert summary["rounds_checked"] == 0.0 and summary["valid_fraction"] == 1.0

    def test_describe(self):
        spec = TDynamicSpec(coloring_problem_pair(), T=4)
        assert "T=4" in spec.describe()
