"""Tests of the maximal-matching extension (the §7.1 recipe demonstration)."""


from repro.dynamics import generators
from repro.dynamics.adversaries import ChurnAdversary, StaticAdversary
from repro.dynamics.churn import FlipChurn
from repro.problems import matching_problem_pair
from repro.problems.matching import UNMATCHED, matched_pairs
from repro.runtime.simulator import run_simulation
from repro.utils.rng import RngFactory
from repro.core import default_window, verify_never_retracts, verify_t_dynamic
from repro.algorithms.matching import DMatch, DynamicMatching, SMatch, dynamic_matching


def assert_is_maximal_matching(graph, assignment):
    """Direct maximal-matching check used as ground truth in these tests."""
    pairs = matched_pairs(assignment)
    matched_nodes = {v for pair in pairs for v in pair}
    # validity: matched pairs are edges, each node matched at most once (by construction of pairs)
    for u, v in pairs:
        assert graph.has_edge(u, v)
    # every node decided, matched nodes consistent
    for v in graph.nodes:
        value = assignment.get(v)
        assert value is not None
        if value != UNMATCHED:
            assert (min(v, value), max(v, value)) in pairs
    # maximality: no edge with both endpoints unmatched
    for u, v in graph.edges:
        assert not (assignment.get(u) == UNMATCHED and assignment.get(v) == UNMATCHED)


class TestDMatch:
    def test_static_graph_reaches_maximal_matching(self, medium_gnp):
        n = medium_gnp.num_nodes
        trace = run_simulation(
            n=n, algorithm=DMatch(), adversary=StaticAdversary(medium_gnp), rounds=80, seed=1
        )
        final = trace.outputs(trace.num_rounds)
        assert_is_maximal_matching(medium_gnp, final)

    def test_never_retracts(self, medium_gnp):
        n = medium_gnp.num_nodes
        adversary = ChurnAdversary(n, FlipChurn(medium_gnp, 0.03), RngFactory(2).stream("adv"))
        trace = run_simulation(n=n, algorithm=DMatch(), adversary=adversary, rounds=50, seed=2)
        assert verify_never_retracts(trace) == []

    def test_matched_partners_adjacent_in_union_graph(self, medium_gnp):
        n = medium_gnp.num_nodes
        adversary = ChurnAdversary(n, FlipChurn(medium_gnp, 0.05), RngFactory(3).stream("adv"))
        trace = run_simulation(n=n, algorithm=DMatch(), adversary=adversary, rounds=50, seed=3)
        final = trace.outputs(trace.num_rounds)
        union = trace.graph.union_graph(trace.num_rounds, trace.num_rounds)
        for u, v in matched_pairs(final):
            assert union.has_edge(u, v)

    def test_isolated_nodes_become_unmatched(self):
        topo = generators.empty(5)
        trace = run_simulation(n=5, algorithm=DMatch(), adversary=StaticAdversary(topo), rounds=5, seed=4)
        assert all(value == UNMATCHED for value in trace.outputs(5).values())


class TestSMatch:
    def test_static_graph_converges_and_stays(self, medium_gnp):
        n = medium_gnp.num_nodes
        algorithm = SMatch()
        trace = run_simulation(
            n=n, algorithm=algorithm, adversary=StaticAdversary(medium_gnp), rounds=100, seed=5
        )
        final = trace.outputs(trace.num_rounds)
        pairs = matched_pairs(final)
        assert pairs  # something matched
        for u, v in pairs:
            assert medium_gnp.has_edge(u, v)
        # Maximality over the internal decisions: no edge joins two nodes that
        # both consider themselves unmatched or free (⊥ outputs hide the
        # internal unmatched state, see SMatch.output).
        matched_nodes = {v for pair in pairs for v in pair}
        for u, v in medium_gnp.edges:
            assert u in matched_nodes or v in matched_nodes
        # stability after convergence: last 10 rounds identical
        for r in range(trace.num_rounds - 9, trace.num_rounds + 1):
            assert trace.outputs(r) == final

    def test_matched_pair_unmatches_when_edge_disappears(self):
        pair_graph = generators.path(2)
        apart = generators.empty(2)
        from repro.dynamics.adversaries import ScriptedAdversary

        adversary = ScriptedAdversary([pair_graph] * 10 + [apart] * 3)
        trace = run_simulation(n=2, algorithm=SMatch(), adversary=adversary, rounds=13, seed=6)
        mid = trace.outputs(10)
        assert mid == {0: 1, 1: 0}
        final = trace.outputs(13)
        assert final[0] != 1 and final[1] != 0  # the stale partners were dropped

    def test_repair_metric_counts_events(self, small_gnp):
        n = small_gnp.num_nodes
        algorithm = SMatch()
        adversary = ChurnAdversary(n, FlipChurn(small_gnp, 0.2), RngFactory(7).stream("adv"))
        run_simulation(n=n, algorithm=algorithm, adversary=adversary, rounds=40, seed=7)
        assert algorithm.metrics()["repair_events"] > 0


class TestDynamicMatching:
    def test_t_dynamic_under_churn(self, medium_gnp):
        n = medium_gnp.num_nodes
        T1 = default_window(n)
        adversary = ChurnAdversary(n, FlipChurn(medium_gnp, 0.02), RngFactory(8).stream("adv"))
        trace = run_simulation(n=n, algorithm=DynamicMatching(T1), adversary=adversary, rounds=3 * T1, seed=8)
        violations = verify_t_dynamic(trace, matching_problem_pair(), T1)
        assert len(violations) <= 0.05 * trace.num_rounds

    def test_static_graph_valid_and_stable(self, small_gnp):
        n = small_gnp.num_nodes
        T1 = default_window(n)
        trace = run_simulation(
            n=n, algorithm=DynamicMatching(T1), adversary=StaticAdversary(small_gnp), rounds=4 * T1, seed=9
        )
        assert verify_t_dynamic(trace, matching_problem_pair(), T1) == []
        final = trace.outputs(trace.num_rounds)
        assert_is_maximal_matching(small_gnp, final)
        grace = 3 * T1
        for v in range(n):
            values = {trace.output_of(v, r) for r in range(grace + 1, trace.num_rounds + 1)}
            assert len(values) == 1

    def test_factory(self):
        assert dynamic_matching(100).T1 == default_window(100)
        assert dynamic_matching(100, window=7).T1 == 7
