"""Tests for the ``repro.exec`` subsystem.

Covers the work-unit/chunk contract, backend equivalence on a full
registered-adversary matrix (every backend byte-identical to serial),
checkpoint/resume via the sweep journal (kill-mid-sweep → resume →
byte-identical store entries), execution policies and their config/CLI
surfaces, the per-worker spec cache, and the serial fallback.
"""

import io
import json

import pytest

from repro.errors import ConfigurationError
from repro.exec import (
    BACKENDS,
    Backend,
    BackendError,
    ExecutionPolicy,
    SweepJournal,
    auto_chunk_size,
    batch_key,
    build_chunks,
    current_policy,
    make_backend,
    resolve_policy,
    run_units,
    units_for_spec,
    use_policy,
)
from repro.exec.policy import policy_from_mapping
from repro.exec.progress import ProgressReporter
from repro.exec.runner import INTERRUPT_ENV
from repro.exec.units import Chunk, execute_chunk_wire
from repro.scenarios import METRICS, ScenarioSpec, component, run_scenario, sweep
from repro.scenarios.registry import ADVERSARIES
from repro.scenarios.store import canonical_json


def tiny_spec(**overrides):
    defaults = dict(
        n=16,
        topology="gnp_sparse",
        algorithm="dynamic-coloring",
        adversary=component("flip-churn", flip_prob=0.02),
        rounds=4,
        seeds=(0, 1, 2),
        metrics=(component("validity", problem="coloring"),),
    )
    defaults.update(overrides)
    return ScenarioSpec(**defaults)


# ---------------------------------------------------------------------------
# units and chunks
# ---------------------------------------------------------------------------


class TestUnitsAndChunks:
    def test_units_share_spec_key(self):
        units = units_for_spec(tiny_spec())
        assert len(units) == 3
        assert len({u.spec_key for u in units}) == 1
        assert [u.seed for u in units] == [0, 1, 2]
        assert len({u.unit_key for u in units}) == 3

    def test_batch_key_tracks_workload(self):
        a = units_for_spec(tiny_spec())
        b = units_for_spec(tiny_spec())
        c = units_for_spec(tiny_spec(seeds=(0, 1, 2, 3)))
        assert batch_key(a) == batch_key(b)
        assert batch_key(a) != batch_key(c)

    def test_build_chunks_respects_size_and_spec_boundaries(self):
        units = units_for_spec(tiny_spec(seeds=tuple(range(5)))) + units_for_spec(
            tiny_spec(n=17, seeds=tuple(range(3)))
        )
        chunks = build_chunks(units, 2)
        assert [len(c) for c in chunks] == [2, 2, 1, 2, 1]
        assert [c.start for c in chunks] == [0, 2, 4, 5, 7]
        for chunk in chunks:
            assert all(units[chunk.start + i].spec_key == chunk.spec_key for i in range(len(chunk)))

    def test_build_chunks_rejects_bad_size(self):
        with pytest.raises(ConfigurationError):
            build_chunks(units_for_spec(tiny_spec()), 0)

    def test_auto_chunk_size(self):
        assert auto_chunk_size(0, 4) == 1
        assert auto_chunk_size(8, 4) == 1
        assert auto_chunk_size(1000, 2) == 64  # capped for many tiny units
        assert 1 <= auto_chunk_size(100, 4) <= 64

    def test_chunk_wire_roundtrip(self):
        units = units_for_spec(tiny_spec())
        (chunk,) = build_chunks(units, 8)
        again = Chunk.from_wire(chunk.to_wire())
        assert again == chunk

    def test_execute_chunk_wire_contract(self):
        units = units_for_spec(tiny_spec(seeds=(0,)))
        (chunk,) = build_chunks(units, 1)
        response = json.loads(execute_chunk_wire(chunk.to_wire()))
        assert response["index"] == chunk.index
        assert len(response["rows"]) == 1
        assert "valid_fraction" in response["rows"][0]


# ---------------------------------------------------------------------------
# backend equivalence (the registered-adversary matrix)
# ---------------------------------------------------------------------------

#: Parameters for the adversaries that are not default-constructible.
_ADVERSARY_PARAMS = {
    "freeze-after": {"inner": "flip-churn", "freeze_round": 3},
    "phase": {"phases": [[3, "flip-churn"], [None, "static"]]},
    "composite-churn": {"processes": [{"kind": "flip", "flip_prob": 0.02}]},
}


def adversary_matrix_units():
    """One tiny scenario per registered adversary (the equivalence matrix)."""
    units = []
    for name in ADVERSARIES.available():
        spec = tiny_spec(
            adversary=component(name, **_ADVERSARY_PARAMS.get(name, {})),
            seeds=(0, 1),
            rounds=4,
            name=f"matrix-{name}",
        )
        units.extend(units_for_spec(spec))
    return units


class TestBackendEquivalence:
    def test_matrix_covers_every_registered_adversary(self):
        labels = {json.dumps(u.spec_dict["adversary"]["name"]) for u in adversary_matrix_units()}
        assert len(labels) == len(ADVERSARIES.available())

    @pytest.fixture(scope="class")
    def serial_reference(self):
        units = adversary_matrix_units()
        rows = run_units(units, ExecutionPolicy(backend="serial"))
        return units, canonical_json(rows)

    @pytest.mark.parametrize("backend", ["process", "thread", "local-cluster"])
    def test_backend_rows_byte_identical_to_serial(self, serial_reference, backend):
        units, reference = serial_reference
        policy = ExecutionPolicy(backend=backend, max_workers=2, chunk_size=3)
        rows = run_units(units, policy)
        assert canonical_json(rows) == reference

    @pytest.mark.parametrize("chunk_size", [1, 2, 7, None])
    def test_chunking_never_changes_rows(self, serial_reference, chunk_size):
        units, reference = serial_reference
        policy = ExecutionPolicy(backend="serial", chunk_size=chunk_size)
        assert canonical_json(run_units(units, policy)) == reference

    def test_run_scenario_execution_parameter(self):
        spec = tiny_spec()
        a = run_scenario(spec)
        b = run_scenario(spec, execution="thread")
        c = run_scenario(spec, execution=ExecutionPolicy(backend="process", max_workers=2))
        d = run_scenario(spec, execution={"backend": "serial", "chunk_size": 2})
        assert a.rows == b.rows == c.rows == d.rows

    def test_sweep_execution_parameter(self):
        spec = tiny_spec(seeds=(0, 1))
        over = {"adversary.params.flip_prob": [0.0, 0.05]}
        a = sweep(spec, over=over)
        b = sweep(spec, over=over, execution=ExecutionPolicy(backend="thread", max_workers=2))
        assert [p.rows for p in a] == [p.rows for p in b]
        assert [p.overrides for p in a] == [p.overrides for p in b]


# ---------------------------------------------------------------------------
# fallback
# ---------------------------------------------------------------------------


class TestFallback:
    def test_transport_failure_falls_back_to_serial(self):
        @BACKENDS.register("explode-transport", overwrite=True)
        class ExplodingBackend(Backend):
            def __init__(self, max_workers=None):
                del max_workers

            def submit_batch(self, chunks):
                done = 0
                for chunk in chunks:
                    if done >= 1:
                        raise BackendError("transport died mid-batch")
                    done += 1
                    from repro.exec.units import execute_chunk

                    yield chunk.index, execute_chunk(
                        (chunk.spec_key, chunk.spec_dict, chunk.seeds)
                    )

        try:
            units = units_for_spec(tiny_spec(seeds=tuple(range(6))))
            reference = run_units(units, ExecutionPolicy(backend="serial"))
            rows = run_units(units, ExecutionPolicy(backend="explode-transport", chunk_size=2))
            assert canonical_json(rows) == canonical_json(reference)
        finally:
            BACKENDS.unregister("explode-transport")

    def test_ad_hoc_components_fall_back_from_local_cluster(self):
        """Components only the parent knows about cannot cross spawn — the
        runner silently recomputes serially and the rows still come out."""

        @METRICS.register("exec-test-parent-only", overwrite=True)
        def _metric(ctx):
            return {"parent_only": 1.0}

        try:
            spec = tiny_spec(metrics=(component("exec-test-parent-only"),), seeds=(0, 1))
            rows = run_units(
                units_for_spec(spec),
                ExecutionPolicy(backend="local-cluster", max_workers=2),
            )
            assert rows == [{"parent_only": 1.0}, {"parent_only": 1.0}]
        finally:
            METRICS.unregister("exec-test-parent-only")


# ---------------------------------------------------------------------------
# journal / resume
# ---------------------------------------------------------------------------

#: Toggled by tests to make the "exec-test-fragile" metric explode mid-batch.
_FRAGILE_FAILS_AT = {"seed": None}


@METRICS.register("exec-test-fragile")
def _fragile_metric(ctx):
    """Test metric: raises on one configured seed (simulates a crash)."""
    if _FRAGILE_FAILS_AT["seed"] == ctx.seed:
        raise RuntimeError(f"injected failure at seed {ctx.seed}")
    return {"ok_seed": float(ctx.seed)}


class TestJournalResume:
    def _fragile_spec(self):
        return tiny_spec(metrics=(component("exec-test-fragile"),), seeds=tuple(range(8)))

    def test_kill_mid_sweep_then_resume_recomputes_only_the_rest(self, tmp_path):
        spec = self._fragile_spec()
        units = units_for_spec(spec)
        journal_dir = tmp_path / "journals"
        policy = ExecutionPolicy(backend="serial", chunk_size=1, journal_dir=str(journal_dir))

        _FRAGILE_FAILS_AT["seed"] = 5
        try:
            with pytest.raises(RuntimeError, match="injected failure"):
                run_units(units, policy)
        finally:
            _FRAGILE_FAILS_AT["seed"] = None

        journal = SweepJournal.for_batch(journal_dir, units)
        completed = journal.load()
        assert sorted(completed) == [0, 1, 2, 3, 4]  # seeds 0-4 checkpointed

        rows = run_units(units, policy.replace(resume=True))
        assert [row["ok_seed"] for row in rows] == [float(s) for s in range(8)]
        assert not journal.path.exists()  # completed journals are cleaned up

        uninterrupted = run_units(units, ExecutionPolicy(backend="serial"))
        assert canonical_json(rows) == canonical_json(uninterrupted)

    def test_without_resume_a_stale_journal_is_discarded(self, tmp_path):
        spec = self._fragile_spec()
        units = units_for_spec(spec)
        journal_dir = tmp_path / "journals"
        policy = ExecutionPolicy(backend="serial", chunk_size=1, journal_dir=str(journal_dir))
        _FRAGILE_FAILS_AT["seed"] = 3
        try:
            with pytest.raises(RuntimeError):
                run_units(units, policy)
        finally:
            _FRAGILE_FAILS_AT["seed"] = None
        # No --resume: the journal restarts from scratch (and the run works).
        rows = run_units(units, policy)
        assert [row["ok_seed"] for row in rows] == [float(s) for s in range(8)]

    def test_injected_interrupt_env(self, tmp_path, monkeypatch):
        units = units_for_spec(tiny_spec(seeds=tuple(range(6))))
        journal_dir = tmp_path / "journals"
        policy = ExecutionPolicy(backend="serial", chunk_size=1, journal_dir=str(journal_dir))
        monkeypatch.setenv(INTERRUPT_ENV, "2")
        with pytest.raises(KeyboardInterrupt):
            run_units(units, policy)
        monkeypatch.delenv(INTERRUPT_ENV)
        journal = SweepJournal.for_batch(journal_dir, units)
        assert sorted(journal.load()) == [0, 1]
        rows = run_units(units, policy.replace(resume=True))
        assert canonical_json(rows) == canonical_json(
            run_units(units, ExecutionPolicy(backend="serial"))
        )

    def test_journal_tolerates_torn_final_line(self, tmp_path):
        units = units_for_spec(tiny_spec(seeds=(0, 1, 2)))
        journal = SweepJournal.for_batch(tmp_path, units)
        journal.begin(resume=False)
        journal.record(0, {"x": 1.0})
        journal.record(1, {"x": float("nan")})
        journal.close()
        with journal.path.open("a", encoding="utf-8") as handle:
            handle.write('{"i": 2, "u": "trunca')  # the kill happened mid-write
        completed = SweepJournal.for_batch(tmp_path, units).load()
        assert sorted(completed) == [0, 1]
        assert canonical_json(completed[1]) == canonical_json({"x": float("nan")})

    def test_resume_append_after_torn_line_keeps_new_records_parseable(self, tmp_path):
        """A second kill after resuming past a torn line must not merge the
        torn fragment with the first freshly appended record."""
        units = units_for_spec(tiny_spec(seeds=(0, 1, 2)))
        journal = SweepJournal.for_batch(tmp_path, units)
        journal.begin(resume=False)
        journal.record(0, {"x": 1.0})
        journal.close()
        with journal.path.open("a", encoding="utf-8") as handle:
            handle.write('{"i": 1, "u": "torn')  # kill #1 mid-write, no newline
        resumed = SweepJournal.for_batch(tmp_path, units)
        assert sorted(resumed.begin(resume=True)) == [0]
        resumed.record(1, {"x": 2.0})
        resumed.close()  # kill #2 would land here
        reloaded = SweepJournal.for_batch(tmp_path, units).load()
        assert sorted(reloaded) == [0, 1]
        assert reloaded[1] == {"x": 2.0}

    def test_journal_ignores_foreign_unit_keys(self, tmp_path):
        units_a = units_for_spec(tiny_spec(seeds=(0, 1)))
        units_b = units_for_spec(tiny_spec(n=17, seeds=(0, 1)))
        journal_a = SweepJournal(tmp_path / "j.jsonl", units_a)
        journal_a.begin(resume=False)
        journal_a.record(0, {"x": 1.0})
        journal_a.close()
        assert SweepJournal(tmp_path / "j.jsonl", units_b).load() == {}


# ---------------------------------------------------------------------------
# spec cache
# ---------------------------------------------------------------------------


class TestSpecCache:
    def test_chunked_execution_parses_each_spec_once(self, monkeypatch):
        from repro.exec import units as units_module

        monkeypatch.setattr(units_module, "_SPEC_CACHE", {})
        calls = {"n": 0}
        original = ScenarioSpec.from_dict.__func__

        def counting(cls, data):
            calls["n"] += 1
            return original(cls, data)

        monkeypatch.setattr(ScenarioSpec, "from_dict", classmethod(counting))
        units = units_for_spec(tiny_spec(seeds=tuple(range(6))))
        run_units(units, ExecutionPolicy(backend="serial", chunk_size=2))
        assert calls["n"] == 1  # six units, three chunks, one spec parse


# ---------------------------------------------------------------------------
# policies
# ---------------------------------------------------------------------------


class TestPolicies:
    def test_legacy_flags_map_to_pr1_behaviour(self):
        assert resolve_policy().backend == "serial"
        assert resolve_policy(parallel=True).backend == "process"
        assert resolve_policy(parallel=True, max_workers=3).max_workers == 3

    def test_ambient_policy_reaches_nested_calls(self):
        ambient = ExecutionPolicy(backend="thread", chunk_size=5)
        with use_policy(ambient):
            assert current_policy() is ambient
            assert resolve_policy(parallel=True) is ambient
            # --serial must defeat an ambient parallel backend.
            assert resolve_policy(parallel=False).backend == "serial"
        assert current_policy() is None

    def test_explicit_execution_beats_ambient(self):
        with use_policy(ExecutionPolicy(backend="thread")):
            assert resolve_policy(parallel=True, execution="serial").backend == "serial"

    def test_policy_validation(self):
        with pytest.raises(ConfigurationError):
            ExecutionPolicy(chunk_size=0)
        with pytest.raises(ConfigurationError):
            ExecutionPolicy(max_workers=-1)
        with pytest.raises(ConfigurationError):
            policy_from_mapping({"backend": "proces"})  # typo → suggestion
        with pytest.raises(ConfigurationError):
            policy_from_mapping({"chunk_sizes": 4})  # unknown key
        with pytest.raises(ConfigurationError):
            policy_from_mapping({"resume": "yes"})
        policy = policy_from_mapping({"backend": "process", "chunk_size": 8})
        assert policy.backend == "process"
        assert policy.chunk_size == 8

    def test_unknown_backend_fails_with_suggestions(self):
        with pytest.raises(Exception, match="did you mean"):
            make_backend("seriall", 1)

    def test_parallel_survives_backendless_execution_block(self):
        """A config block that only tunes chunking must not eat --parallel."""
        import argparse

        from repro.scenarios.cli import _build_policy

        args = argparse.Namespace(
            backend=None, chunk_size=None, workers=None, resume=False,
            progress=False, no_store=True, store="results",
        )
        policy = _build_policy(args, {"chunk_size": 4}, parallel=True)
        assert policy.backend == "process"
        assert policy.chunk_size == 4
        # An explicit backend choice in the block still wins over --parallel.
        policy = _build_policy(args, {"backend": "thread"}, parallel=True)
        assert policy.backend == "thread"


# ---------------------------------------------------------------------------
# progress
# ---------------------------------------------------------------------------


class TestProgress:
    def test_reports_rate_and_total(self):
        stream = io.StringIO()
        reporter = ProgressReporter(10, label="demo", enabled=True, stream=stream)
        reporter.update(4)
        reporter.update(6)
        reporter.finish()
        output = stream.getvalue()
        assert "demo" in output
        assert "10/10 units" in output
        assert "rows/s" in output

    def test_disabled_reporter_is_silent(self):
        stream = io.StringIO()
        reporter = ProgressReporter(5, enabled=False, stream=stream)
        reporter.update(5)
        reporter.finish()
        assert stream.getvalue() == ""

    def test_restored_units_are_displayed_but_not_rated(self):
        stream = io.StringIO()
        reporter = ProgressReporter(6, enabled=True, already_done=4, stream=stream)
        assert "restored from journal" in stream.getvalue()
        reporter.update(2)
        reporter.finish()
        assert "6/6 units" in stream.getvalue()


# ---------------------------------------------------------------------------
# integration through run_scenario / store (byte-identical resumed entries)
# ---------------------------------------------------------------------------


class TestStoreByteIdentity:
    def test_resumed_cli_run_writes_byte_identical_entries(self, tmp_path, monkeypatch):
        """The full pipeline: interrupted store-backed sweep → resume →
        the store entry file equals the uninterrupted run's, byte for byte."""
        from repro.scenarios.cli import main

        config = {
            "kind": "sweep",
            "spec": tiny_spec(seeds=(0, 1)).to_dict(),
            "over": {"adversary.params.flip_prob": [0.0, 0.03, 0.06]},
        }
        config_path = tmp_path / "sweep.json"
        config_path.write_text(json.dumps(config), encoding="utf-8")

        straight = tmp_path / "straight"
        resumed = tmp_path / "resumed"
        assert main(["sweep", str(config_path), "--store", str(straight)]) == 0

        monkeypatch.setenv(INTERRUPT_ENV, "2")
        assert main(["sweep", str(config_path), "--store", str(resumed),
                     "--chunk-size", "1"]) == 130
        monkeypatch.delenv(INTERRUPT_ENV)
        assert list((resumed / ".journals").glob("*.jsonl"))
        assert main(["sweep", str(config_path), "--store", str(resumed), "--resume"]) == 0
        assert not list((resumed / ".journals").glob("*.jsonl"))

        (entry_a,) = sorted((straight / "sweeps").glob("*.json"))
        (entry_b,) = sorted((resumed / "sweeps").glob("*.json"))
        assert entry_a.name == entry_b.name
        payload_a = json.loads(entry_a.read_text(encoding="utf-8"))
        payload_b = json.loads(entry_b.read_text(encoding="utf-8"))
        # Provenance carries wall-clock telemetry; the rest must match exactly.
        payload_a.pop("provenance", None)
        payload_b.pop("provenance", None)
        assert canonical_json(payload_a) == canonical_json(payload_b)


class TestGcAndLog:
    def _populate(self, tmp_path):
        from repro.scenarios.cli import main

        configs = tmp_path / "configs"
        (configs / "scenarios").mkdir(parents=True)
        config = {"kind": "scenario", "spec": tiny_spec(seeds=(0,), name="gc-demo").to_dict()}
        path = configs / "scenarios" / "gc-demo.json"
        path.write_text(json.dumps(config), encoding="utf-8")
        store = tmp_path / "store"
        assert main(["run", str(path), "--store", str(store)]) == 0
        return configs, store

    def test_gc_prunes_only_unreachable_entries(self, tmp_path, capsys):
        from repro.scenarios.cli import main

        configs, store = self._populate(tmp_path)
        (live,) = (store / "scenarios").glob("*.json")
        stale = store / "scenarios" / "stale-000000000000.json"
        stale.write_text(live.read_text(encoding="utf-8"), encoding="utf-8")

        assert main(["gc", "--store", str(store), "--configs", str(configs), "--dry-run"]) == 0
        assert stale.exists()
        assert "would remove" in capsys.readouterr().out

        assert main(["gc", "--store", str(store), "--configs", str(configs)]) == 0
        assert not stale.exists()
        assert live.exists()

    def test_gc_can_clear_journals(self, tmp_path):
        from repro.scenarios.cli import main

        configs, store = self._populate(tmp_path)
        journal = store / ".journals" / "deadbeef.jsonl"
        journal.parent.mkdir(exist_ok=True)
        journal.write_text("{}\n", encoding="utf-8")
        assert main(["gc", "--store", str(store), "--configs", str(configs)]) == 0
        assert journal.exists()  # journals survive a plain gc
        assert main(
            ["gc", "--store", str(store), "--configs", str(configs), "--journals"]
        ) == 0
        assert not journal.exists()

    def test_gc_refuses_to_run_with_a_broken_config(self, tmp_path, capsys):
        """An unloadable config must abort gc — otherwise its entries would
        look unreachable and get deleted."""
        from repro.scenarios.cli import main

        configs, store = self._populate(tmp_path)
        (live,) = (store / "scenarios").glob("*.json")
        (configs / "scenarios" / "broken.json").write_text("{not json", encoding="utf-8")
        assert main(["gc", "--store", str(store), "--configs", str(configs)]) == 1
        assert "cannot compute gc reachability" in capsys.readouterr().err
        assert live.exists()

    def test_invalid_chunk_size_flag_is_rejected_not_ignored(self, tmp_path, capsys):
        from repro.scenarios.cli import main

        configs, _ = self._populate(tmp_path)
        config_path = configs / "scenarios" / "gc-demo.json"
        code = main(["run", str(config_path), "--no-store", "--chunk-size", "0"])
        assert code == 1
        assert "chunk_size" in capsys.readouterr().err

    def test_log_lists_provenance(self, tmp_path, capsys):
        from repro.scenarios.cli import main

        _, store = self._populate(tmp_path)
        assert main(["log", "--store", str(store)]) == 0
        output = capsys.readouterr().out
        assert "gc-demo" in output
        assert "written" in output
        assert main(["log", "--store", str(store), "--kind", "nope"]) == 0
        assert "no matching store entries" in capsys.readouterr().out

    def test_log_missing_store_fails(self, tmp_path):
        from repro.scenarios.cli import main

        assert main(["log", "--store", str(tmp_path / "absent")]) == 1
