"""Shared-memory topology pools (:mod:`repro.exec.shm`).

Gates:

* publish → attach round-trips a base topology content-identically (nodes,
  edges, adjacency) and primes the zero-copy edge-universe cache;
* the runner publishes exactly the topologies shared by >= 2 units of a
  pooled batch, pooled rows stay byte-identical to serial rows, and every
  segment is unlinked when the batch ends — crash or not;
* ``repro audit`` reports segments whose owning process died, and
  ``repro repair`` unlinks them.
"""

import json
import os

import numpy as np
import pytest

from repro.exec import shm
from repro.exec.cache import cached_base_topology, topology_cache_clear
from repro.exec.policy import ExecutionPolicy
from repro.exec.runner import run_units
from repro.exec.units import build_chunks, units_for_spec
from repro.kernel.csr import EdgeUniverse
from repro.scenarios.spec import ScenarioSpec, component


@pytest.fixture(autouse=True)
def _clean_shm_state():
    shm.shm_state_clear()
    topology_cache_clear()
    yield
    shm.shm_state_clear()
    topology_cache_clear()


def _spec(algorithm: str, seeds=(1, 2)) -> ScenarioSpec:
    return ScenarioSpec(
        n=48,
        algorithm=component(algorithm),
        adversary=component("markov-churn", p_off=0.1, p_on=0.1),
        topology=component("gnp", p=0.15),
        rounds=8,
        seeds=seeds,
        metrics=(),
        name=f"shm-{algorithm}",
    )


def _segments_on_disk():
    return sorted(x for x in os.listdir("/dev/shm") if x.startswith("repro-shm-"))


class TestPublishAttach:
    def test_round_trip_is_content_identical(self):
        built = cached_base_topology("gnp", {"p": 0.1}, 200, 7)
        key = shm.topology_key("gnp", {"p": 0.1}, 200, 7)
        with shm.SharedTopologyPool() as pool:
            assert pool.publish(key, built, 200)
            # a fresh worker: local caches empty, registry inherited via env
            shm._ATTACHED.clear()
            shm._UNIVERSE_CACHE.clear()
            topology_cache_clear()
            attached = cached_base_topology("gnp", {"p": 0.1}, 200, 7)
            assert attached.nodes == built.nodes
            assert attached.edges == built.edges
            assert attached.adjacency() == built.adjacency()
            assert shm.shm_info()["attach_hits"] == 1

    def test_attach_primes_zero_copy_universe(self):
        built = cached_base_topology("gnp", {"p": 0.1}, 150, 3)
        key = shm.topology_key("gnp", {"p": 0.1}, 150, 3)
        with shm.SharedTopologyPool() as pool:
            assert pool.publish(key, built, 150)
            shm._ATTACHED.clear()
            shm._UNIVERSE_CACHE.clear()
            attached = shm.attach_topology(key)
            edges = tuple(sorted(attached.edges))
            universe = shm.shared_edge_universe(150, edges)
            assert not universe.usrc.flags.writeable  # shm-mapped view
            reference = EdgeUniverse(150, edges)
            for field in ("eu", "ev", "usrc", "udst", "uedge", "indptr"):
                np.testing.assert_array_equal(
                    getattr(universe, field), getattr(reference, field)
                )

    def test_unregistered_key_attaches_nothing(self):
        assert shm.attach_topology("deadbeefdeadbeef") is None

    def test_universe_cache_hits_on_equal_content(self):
        edges = ((0, 1), (1, 2))
        first = shm.shared_edge_universe(3, edges)
        second = shm.shared_edge_universe(3, ((0, 1), (1, 2)))  # fresh tuple
        assert first is second

    def test_close_unlinks_and_clears_registry(self):
        built = cached_base_topology("gnp", {"p": 0.1}, 100, 1)
        key = shm.topology_key("gnp", {"p": 0.1}, 100, 1)
        pool = shm.SharedTopologyPool()
        assert pool.publish(key, built, 100)
        assert _segments_on_disk()
        pool.close()
        assert not _segments_on_disk()
        assert key not in shm._registry()


class TestRunnerIntegration:
    def test_publish_for_chunks_selects_shared_topologies(self):
        # two specs share topology+seeds => shared keys; a third spec with a
        # disjoint seed is unique and must not be published
        units = (
            units_for_spec(_spec("smis"))
            + units_for_spec(_spec("dmis"))
            + units_for_spec(_spec("scolor", seeds=(9,)))
        )
        pool = shm.publish_for_chunks(build_chunks(units, 2))
        assert pool is not None
        try:
            assert pool.segments == 2  # seeds 1 and 2, shared by smis+dmis
            unique = shm.topology_key("gnp", {"p": 0.15}, 48, 9)
            assert unique not in shm._registry()
        finally:
            pool.close()

    def test_pooled_rows_byte_identical_and_segments_released(self):
        units = units_for_spec(_spec("smis")) + units_for_spec(_spec("dmis"))
        serial_rows = run_units(units, ExecutionPolicy(backend="serial", progress=False))
        pooled_rows = run_units(
            units, ExecutionPolicy(backend="process", max_workers=2, progress=False)
        )
        assert json.dumps(serial_rows, sort_keys=True) == json.dumps(
            pooled_rows, sort_keys=True
        )
        assert not _segments_on_disk()
        assert not shm._registry()


class TestAuditRepair:
    def _fake_dead_segment(self):
        from multiprocessing import shared_memory

        # pid 2**22+5 is above the default pid_max: guaranteed dead
        name = f"repro-shm-{2**22 + 5}-feedfacefeedface"
        segment = shared_memory.SharedMemory(name=name, create=True, size=64)
        segment.close()
        return name

    def test_stale_segment_is_found_and_unlinked(self):
        name = self._fake_dead_segment()
        try:
            assert name in shm.stale_segments()
            live = f"repro-shm-{os.getpid()}-0123456789abcdef"
            assert live not in shm.stale_segments()
        finally:
            removed = shm.unlink_stale_segments()
        assert name in removed
        assert name not in _segments_on_disk()

    def test_audit_reports_stale_shm(self, tmp_path):
        from repro.scenarios.audit import audit_store

        name = self._fake_dead_segment()
        try:
            findings = audit_store(tmp_path)
            stale = [f for f in findings if f.category == "stale-shm"]
            assert any(name in f.path for f in stale)
        finally:
            shm.unlink_stale_segments()
