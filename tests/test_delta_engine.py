"""The delta engine: TopologyDelta, incremental storage, and path equivalence.

The hard gate of the delta refactor is that the delta path is *observably
identical* to the snapshot path: every registered adversary must produce
byte-identical trace rows under both, and ``Topology.apply(delta)`` must
round-trip against from-scratch construction for arbitrary change sequences.
"""

import numpy as np
import pytest

from repro.errors import SimulationError, TopologyError
from repro.dynamics import generators
from repro.dynamics.adversary import (
    Adversary,
    FULLY_OBLIVIOUS,
    delta_emission,
)
from repro.dynamics.dynamic_graph import DynamicGraph
from repro.dynamics.topology import EMPTY_DELTA, Topology, TopologyDelta, empty_topology
from repro.runtime.simulator import Simulator
from repro.scenarios import ScenarioSpec, available, component
from repro.scenarios.executor import _build_context
from repro.types import Interval, canonical_edge


# ---------------------------------------------------------------------------
# TopologyDelta + Topology.apply
# ---------------------------------------------------------------------------


class TestTopologyDelta:
    def test_canonicalises_edges_and_nodes(self):
        delta = TopologyDelta(added_nodes=[3, 1], added_edges=[(2, 1), (0, 3)])
        assert delta.added_nodes == frozenset({1, 3})
        assert delta.added_edges == frozenset({(1, 2), (0, 3)})

    def test_overlapping_sides_rejected(self):
        with pytest.raises(TopologyError):
            TopologyDelta(added_nodes=[1], removed_nodes=[1])
        with pytest.raises(TopologyError):
            TopologyDelta(added_edges=[(0, 1)], removed_edges=[(1, 0)])

    def test_empty_delta_is_identity(self):
        topo = generators.ring(6)
        assert topo.apply(EMPTY_DELTA) is topo
        assert EMPTY_DELTA.is_empty() and not EMPTY_DELTA

    def test_between_round_trips(self):
        before = Topology(range(5), [(0, 1), (1, 2), (3, 4)])
        after = Topology(range(6), [(0, 1), (2, 3), (3, 4), (4, 5)])
        delta = TopologyDelta.between(before, after)
        assert before.apply(delta) == after
        assert before.delta_to(after) == delta

    def test_apply_shares_untouched_neighbour_sets(self):
        before = generators.ring(8)
        after = before.apply(TopologyDelta(removed_edges=[(0, 1)]))
        # Nodes 3..6 are untouched: their frozensets are the same objects.
        for v in (3, 4, 5, 6):
            assert after.neighbors(v) is before.neighbors(v)
        assert after.neighbors(0) == before.neighbors(0) - {1}

    def test_apply_strictness(self):
        topo = Topology(range(4), [(0, 1), (2, 3)])
        cases = [
            TopologyDelta(added_edges=[(0, 1)]),     # already present
            TopologyDelta(removed_edges=[(1, 2)]),   # absent
            TopologyDelta(added_nodes=[2]),          # already awake
            TopologyDelta(removed_nodes=[9]),        # not awake
            TopologyDelta(removed_nodes=[0]),        # still has an edge
            TopologyDelta(added_edges=[(0, 9)]),     # endpoint not awake
        ]
        for delta in cases:
            with pytest.raises(TopologyError):
                topo.apply(delta)

    def test_remove_node_after_its_edges(self):
        topo = Topology(range(3), [(0, 1)])
        out = topo.apply(TopologyDelta(removed_nodes=[2]))
        assert out.nodes == frozenset({0, 1})
        out2 = topo.apply(TopologyDelta(removed_edges=[(0, 1)], removed_nodes=[1]))
        assert out2.nodes == frozenset({0, 2}) and not out2.edges

    def test_property_style_random_round_trip(self):
        rng = np.random.default_rng(7)
        n = 30
        nodes = set(range(10))
        edges: set = set()
        current = Topology(nodes, edges)
        for _ in range(60):
            # Random exact delta against the current graph.
            sleeping = [v for v in range(n) if v not in nodes]
            add_nodes = {
                int(v) for v in rng.choice(sleeping, size=min(len(sleeping), 2), replace=False)
            } if sleeping and rng.random() < 0.5 else set()
            new_nodes = nodes | add_nodes
            pool = sorted(new_nodes)
            add_edges, del_edges = set(), set()
            for _ in range(int(rng.integers(0, 6))):
                u, v = rng.choice(len(pool), size=2, replace=False)
                e = canonical_edge(pool[int(u)], pool[int(v)])
                if e in edges:
                    del_edges.add(e)
                else:
                    add_edges.add(e)
            delta = TopologyDelta(
                added_nodes=add_nodes, added_edges=add_edges, removed_edges=del_edges
            )
            nodes = new_nodes
            edges = (edges - del_edges) | add_edges
            current = current.apply(delta)
            assert current == Topology(nodes, edges)
            assert current.nodes == frozenset(nodes)
            for v in nodes:
                assert current.degree(v) == sum(1 for e in edges if v in e)


# ---------------------------------------------------------------------------
# DynamicGraph delta storage
# ---------------------------------------------------------------------------


def _random_evolution(rounds: int, seed: int):
    """A list of (delta, topology) pairs for a growing random dynamic graph."""
    rng = np.random.default_rng(seed)
    topo = empty_topology()
    out = []
    for r in range(rounds):
        add_nodes = frozenset(
            int(v) for v in rng.choice(32, size=3, replace=False) if v not in topo.nodes
        )
        pool = sorted(topo.nodes | add_nodes)
        add_edges, del_edges = set(), set()
        if len(pool) >= 2:
            for _ in range(4):
                u, v = rng.choice(len(pool), size=2, replace=False)
                e = canonical_edge(pool[int(u)], pool[int(v)])
                if e in topo.edges:
                    del_edges.add(e)
                elif e not in add_edges:
                    add_edges.add(e)
        delta = TopologyDelta(
            added_nodes=add_nodes, added_edges=add_edges, removed_edges=del_edges
        )
        topo = topo.apply(delta)
        out.append((delta, topo))
    return out


class TestDeltaStorage:
    @pytest.mark.parametrize("checkpoint_interval", [1, 3, 8, 64])
    def test_delta_storage_matches_snapshot_storage(self, checkpoint_interval):
        evolution = _random_evolution(rounds=40, seed=11)
        snap = DynamicGraph(32)
        incr = DynamicGraph(32, checkpoint_interval=checkpoint_interval)
        for delta, topo in evolution:
            snap.append(topo)
            incr.append_delta(delta)
        assert incr.last_round == snap.last_round == 40
        assert incr.topologies() == snap.topologies()
        # Random access (exercises the checkpoint walk, not just the cursor).
        for r in (40, 1, 17, 5, 33, 17):
            assert incr.topology(r) == snap.topology(r)
        for r in range(1, 41):
            assert incr.edge_changes(r) == snap.edge_changes(r)
            assert incr.intersection_graph(r, 5) == snap.intersection_graph(r, 5)
            assert incr.union_graph(r, 5) == snap.union_graph(r, 5)
        assert incr.churn_per_round() == snap.churn_per_round()
        interval = Interval(10, 20)
        keep = incr.topology(10).nodes
        assert incr.is_static_on(keep, interval) == snap.is_static_on(keep, interval)

    def test_append_delta_rejects_node_removal_and_out_of_range(self):
        graph = DynamicGraph(8)
        graph.append_delta(TopologyDelta(added_nodes=range(4)))
        with pytest.raises(TopologyError):
            graph.append_delta(TopologyDelta(removed_nodes=[0]))
        with pytest.raises(TopologyError):
            graph.append_delta(TopologyDelta(added_nodes=[9]))

    def test_latest_topology_is_o1_and_current(self):
        graph = DynamicGraph(8)
        assert graph.latest_topology() is None
        graph.append_delta(TopologyDelta(added_nodes=range(3), added_edges=[(0, 1)]))
        latest = graph.latest_topology()
        assert latest == Topology(range(3), [(0, 1)])
        assert graph.topology(1) is latest

    def test_attached_window_replays_delta_history(self):
        evolution = _random_evolution(rounds=20, seed=3)
        graph = DynamicGraph(32, checkpoint_interval=6)
        for delta, _ in evolution[:15]:
            graph.append_delta(delta)
        window = graph.attach_window(4)
        assert window.round_index == 15
        for delta, _ in evolution[15:]:
            snapshots = graph.append_delta(delta)
            assert snapshots[4].intersection == graph.intersection_graph(graph.last_round, 4)
            assert snapshots[4].union == graph.union_graph(graph.last_round, 4)


# ---------------------------------------------------------------------------
# full-trace equivalence: delta path vs snapshot path
# ---------------------------------------------------------------------------

#: Workable parameters for every registered adversary (small but non-trivial).
_ADVERSARY_SPECS = {
    "static": component("static"),
    "flip-churn": component("flip-churn", flip_prob=0.1),
    "markov-churn": component("markov-churn", p_off=0.05, p_on=0.05),
    "burst-churn": component("burst-churn", burst_prob=0.3, drop_fraction=0.5),
    "edge-insertion": component("edge-insertion", insertions_per_round=2, lifetime=2),
    "targeted-coloring": component("targeted-coloring", attacks_per_round=2, lifetime=4),
    "targeted-mis": component("targeted-mis", mode="cut_notification", attacks_per_round=3),
    "locally-static": component("locally-static", flip_prob=0.1, protected_radius=2),
    "freeze-after": component(
        "freeze-after", inner={"name": "flip-churn", "params": {"flip_prob": 0.2}}, freeze_round=12
    ),
    "mobility": component("mobility", radius=0.3, speed=0.05),
    "phase": component(
        "phase",
        phases=[
            [6, {"name": "flip-churn", "params": {"flip_prob": 0.2}}],
            [6, {"name": "edge-insertion", "params": {"insertions_per_round": 2, "lifetime": 2}}],
            [None, "static"],
        ],
    ),
    "composite-churn": component(
        "composite-churn",
        processes=[
            {"kind": "flip", "flip_prob": 0.1},
            {"kind": "edge-insertion", "insertions_per_round": 1, "lifetime": 3},
        ],
    ),
}

_ALGORITHM_FOR = {
    "targeted-coloring": "dcolor",
    "targeted-mis": "smis",
}


def _trace_rows(spec: ScenarioSpec, seed: int, emit: bool):
    """Run one seed in-process and flatten the trace into comparable rows."""
    with delta_emission(emit):
        ctx = _build_context(spec, seed)
        sim = Simulator(
            n=ctx.n, algorithm=ctx.algorithm, adversary=ctx.adversary, seed=ctx.seed
        )
        sim.run(ctx.rounds)
    return [
        (
            record.round_index,
            record.topology.nodes,
            record.topology.edges,
            dict(record.outputs),
            record.metrics.as_dict(),
        )
        for record in sim.trace
    ]


class TestPathEquivalence:
    def test_every_registered_adversary_is_covered(self):
        assert set(available("adversaries")) == set(_ADVERSARY_SPECS)

    @pytest.mark.parametrize("name", sorted(_ADVERSARY_SPECS))
    @pytest.mark.parametrize("wakeup", [None, "staggered"])
    def test_delta_and_snapshot_traces_identical(self, name, wakeup):
        spec = ScenarioSpec(
            n=30,
            algorithm=_ALGORITHM_FOR.get(name, "dynamic-coloring"),
            adversary=_ADVERSARY_SPECS[name],
            topology="gnp",
            rounds=25,
            wakeup=wakeup,
        )
        assert _trace_rows(spec, seed=5, emit=True) == _trace_rows(spec, seed=5, emit=False)

    def test_scenario_rows_identical_for_mis_suite(self):
        spec = ScenarioSpec(
            n=24,
            algorithm="dynamic-mis",
            adversary=component("markov-churn", p_off=0.03, p_on=0.03),
            topology="gnp_sparse",
            rounds="2*T1",
            metrics=("stability", "validity"),
        )
        spec = spec.replace(metrics=(component("stability"), component("validity", problem="mis")))
        assert _trace_rows(spec, seed=0, emit=True) == _trace_rows(spec, seed=0, emit=False)

    def test_experiment_e01_rows_identical(self):
        from repro.analysis import experiments as E

        with delta_emission(True):
            delta_rows = E.experiment_e01_coloring_convergence(
                sizes=(16,), seeds=(0,), max_round_factor=15
            )
        with delta_emission(False):
            snapshot_rows = E.experiment_e01_coloring_convergence(
                sizes=(16,), seeds=(0,), max_round_factor=15
            )
        assert delta_rows == snapshot_rows


# ---------------------------------------------------------------------------
# simulator-level delta handling
# ---------------------------------------------------------------------------


class _DeltaScript(Adversary):
    """Emits a scripted mix of snapshots and deltas."""

    obliviousness = FULLY_OBLIVIOUS

    def __init__(self, script):
        self._script = script

    def step(self, view):
        return self._script[view.round_index - 1]


def _null_algorithm():
    from repro.runtime.algorithm import DistributedAlgorithm

    class Null(DistributedAlgorithm):
        name = "null"

        def on_wake(self, v):
            pass

        def compose(self, v):
            return None

        def deliver(self, v, inbox):
            pass

        def output(self, v):
            return 0

    return Null()


class TestSimulatorDeltaPath:
    def test_mixed_snapshot_and_delta_script(self):
        base = Topology(range(4), [(0, 1), (1, 2)])
        script = [
            base,
            TopologyDelta(added_edges=[(2, 3)]),
            TopologyDelta(removed_edges=[(0, 1)]),
            EMPTY_DELTA,
        ]
        sim = Simulator(n=4, algorithm=_null_algorithm(), adversary=_DeltaScript(script))
        trace = sim.run(4)
        assert trace.topology(1) == base
        assert trace.topology(2) == base.with_edges(add=[(2, 3)])
        assert trace.topology(3) == base.with_edges(add=[(2, 3)], remove=[(0, 1)])
        assert trace.topology(4) == trace.topology(3)
        assert trace.graph.edge_changes(2) == (frozenset({(2, 3)}), frozenset())
        assert trace.graph.edge_changes(4) == (frozenset(), frozenset())

    def test_round_one_delta_applies_to_empty_graph(self):
        script = [TopologyDelta(added_nodes=range(3), added_edges=[(0, 1)])]
        sim = Simulator(n=3, algorithm=_null_algorithm(), adversary=_DeltaScript(script))
        trace = sim.run(1)
        assert trace.topology(1) == Topology(range(3), [(0, 1)])

    def test_invalid_delta_is_a_simulation_error(self):
        script = [Topology(range(3), [(0, 1)]), TopologyDelta(added_edges=[(0, 1)])]
        sim = Simulator(n=3, algorithm=_null_algorithm(), adversary=_DeltaScript(script))
        with pytest.raises(SimulationError):
            sim.run(2)

    def test_same_topology_object_is_stored_as_empty_delta(self):
        base = generators.ring(5)
        script = [base, base, base]
        sim = Simulator(
            n=5, algorithm=_null_algorithm(), adversary=_DeltaScript(script), checkpoint_interval=8
        )
        trace = sim.run(3)
        # Rounds 2 and 3 re-returned the identical object: stored incrementally.
        assert trace.graph.edge_changes(2) == (frozenset(), frozenset())
        assert trace.topology(2) is trace.topology(3)


# ---------------------------------------------------------------------------
# registry docs + window_for scaling (satellites)
# ---------------------------------------------------------------------------


class TestRegistrySatellites:
    def test_available_docs_surface(self):
        docs = available(docs=True)
        assert set(docs) == set(available())
        for family, members in docs.items():
            for name, doc in members.items():
                assert doc, f"{family}:{name} has no doc string"
        assert "phase" in docs["adversaries"]
        assert "composite-churn" in docs["adversaries"]

    def test_registry_doc_lookup(self):
        from repro.scenarios import ADVERSARIES

        assert ADVERSARIES.doc("phase")
        with pytest.raises(Exception):
            ADVERSARIES.doc("not-a-component")

    def test_window_scale_resolution_and_round_trip(self):
        from repro.core.windows import window_for

        spec = ScenarioSpec(n=64, algorithm="smis", window_scale=0.5)
        assert spec.resolved_window() == window_for(64, 0.5)
        assert ScenarioSpec.from_json(spec.to_json()) == spec
        with pytest.raises(Exception):
            ScenarioSpec(n=64, algorithm="smis", window=10, window_scale=0.5)
        with pytest.raises(Exception):
            ScenarioSpec(n=64, algorithm="smis", window_scale=0)
