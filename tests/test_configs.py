"""Config loading and validation (including the near-miss suggestion bugfix)."""

import json
from pathlib import Path

import pytest

from repro.errors import ConfigurationError, RegistryError
from repro.analysis.experiments.catalog import EXPERIMENTS, experiment_defaults
from repro.scenarios import ScenarioSpec, component
from repro.scenarios.configs import (
    ExperimentConfig,
    ScenarioConfig,
    SweepConfig,
    load_config,
    load_experiment_configs,
    validate_config,
    validate_spec,
)
from repro.scenarios.registry import ALGORITHMS
from repro.scenarios.store import canonical_json

REPO_ROOT = Path(__file__).resolve().parent.parent
CONFIGS_DIR = REPO_ROOT / "configs"


def write(tmp_path, name, payload):
    path = tmp_path / name
    path.write_text(json.dumps(payload))
    return path


class TestLoadConfig:
    def test_scenario_config(self, tmp_path):
        path = write(
            tmp_path,
            "scenario.json",
            {"kind": "scenario", "spec": {"n": 16, "algorithm": "dynamic-coloring"}},
        )
        config = load_config(path)
        assert isinstance(config, ScenarioConfig)
        assert config.spec.n == 16

    def test_bare_spec_dict_is_a_scenario(self, tmp_path):
        spec = ScenarioSpec(n=16, algorithm="dmis")
        path = tmp_path / "bare.json"
        path.write_text(spec.to_json())
        config = load_config(path)
        assert isinstance(config, ScenarioConfig)
        assert config.spec == spec

    def test_sweep_axis_must_be_a_list(self, tmp_path):
        for values in ("dmis", 64):
            path = write(
                tmp_path,
                "sweep.json",
                {
                    "kind": "sweep",
                    "spec": {"n": 16, "algorithm": "dmis"},
                    "over": {"algorithm.name": values},
                },
            )
            with pytest.raises(ConfigurationError, match="must be a JSON list"):
                load_config(path)

    def test_sweep_config(self, tmp_path):
        path = write(
            tmp_path,
            "sweep.json",
            {
                "kind": "sweep",
                "spec": {"n": 16, "algorithm": "dmis"},
                "over": {"n": [16, 32]},
            },
        )
        config = load_config(path)
        assert isinstance(config, SweepConfig)
        assert config.over == {"n": [16, 32]}

    def test_experiment_config_scale_fallbacks(self, tmp_path):
        path = write(
            tmp_path,
            "experiment.json",
            {
                "kind": "experiment",
                "experiment": "e04",
                "title": "E4",
                "params": {"n": 128},
                "smoke_params": {"n": 24},
            },
        )
        config = load_config(path)
        assert isinstance(config, ExperimentConfig)
        assert config.params_for("full") == {"n": 128}
        assert config.params_for("smoke") == {"n": 24}
        assert config.params_for("bench") == {"n": 128}  # falls back to full
        with pytest.raises(ConfigurationError, match="unknown experiment scale"):
            config.params_for("huge")

    def test_unknown_kind_rejected(self, tmp_path):
        path = write(tmp_path, "bad.json", {"kind": "wat"})
        with pytest.raises(ConfigurationError, match="unknown kind 'wat'"):
            load_config(path)

    def test_unknown_keys_rejected(self, tmp_path):
        path = write(
            tmp_path,
            "bad.json",
            {"kind": "scenario", "spec": {"n": 4, "algorithm": "dmis"}, "extra": 1},
        )
        with pytest.raises(ConfigurationError, match="unknown keys"):
            load_config(path)

    def test_invalid_json_rejected(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(ConfigurationError, match="not valid JSON"):
            load_config(path)


class TestValidateSpec:
    def test_clean_spec_has_no_problems(self):
        spec = ScenarioSpec(
            n=16,
            algorithm="dynamic-coloring",
            adversary=component("flip-churn", flip_prob=0.01),
            metrics=(component("validity", problem="coloring"),),
        )
        assert validate_spec(spec) == []

    def test_typo_produces_near_miss_suggestion(self):
        # The satellite bugfix: a typo must not surface as a lookup error deep
        # inside the registry, but as a validation message with suggestions.
        spec = ScenarioSpec(n=16, algorithm="dynamic-colorng")
        problems = validate_spec(spec)
        assert len(problems) == 1
        assert "unknown algorithm 'dynamic-colorng'" in problems[0]
        assert "did you mean" in problems[0]
        assert "dynamic-coloring" in problems[0]

    def test_every_component_role_is_checked(self):
        spec = ScenarioSpec(
            n=16,
            algorithm="nope-alg",
            adversary="nope-adv",
            topology="nope-topo",
            wakeup="nope-wake",
            metrics=("nope-metric",),
            probe="nope-probe",
            stop="nope-stop",
        )
        problems = validate_spec(spec)
        assert len(problems) == 7

    def test_registry_get_also_suggests(self):
        with pytest.raises(RegistryError, match="did you mean.*dynamic-coloring"):
            ALGORITHMS.get("dynamic-colorng")


class TestValidateConfig:
    def test_sweep_grid_points_are_validated(self, tmp_path):
        path = write(
            tmp_path,
            "sweep.json",
            {
                "kind": "sweep",
                "spec": {"n": 16, "algorithm": "dmis"},
                "over": {"algorithm.name": ["dmis-typo"]},
            },
        )
        problems = validate_config(load_config(path))
        assert any("dmis-typo" in p and "did you mean" in p for p in problems)

    def test_experiment_unknown_param_suggests(self, tmp_path):
        path = write(
            tmp_path,
            "experiment.json",
            {
                "kind": "experiment",
                "experiment": "e04",
                "title": "E4",
                "params": {"flip_prob": 0.1},
            },
        )
        problems = validate_config(load_config(path))
        assert len(problems) == 1
        assert "no parameter 'flip_prob'" in problems[0]
        assert "flip_probs" in problems[0]

    def test_experiment_unknown_id_suggests(self, tmp_path):
        path = write(
            tmp_path,
            "experiment.json",
            {"kind": "experiment", "experiment": "e41", "title": "?"},
        )
        problems = validate_config(load_config(path))
        assert any("unknown experiment 'e41'" in p for p in problems)


class TestCommittedConfigs:
    def test_every_experiment_has_a_committed_config(self):
        configs = load_experiment_configs(CONFIGS_DIR / "experiments")
        assert sorted(configs) == sorted(EXPERIMENTS)

    def test_all_committed_configs_validate(self):
        for sub in ("experiments", "scenarios", "sweeps"):
            for path in sorted((CONFIGS_DIR / sub).glob("*.json")):
                assert validate_config(load_config(path)) == [], path

    def test_full_params_match_the_entry_point_defaults(self):
        """`repro experiments --all` must be byte-identical to the in-process
        entry points: the committed full-scale parameter sets are exactly the
        experiment functions' defaults, so both paths make the same call."""
        configs = load_experiment_configs(CONFIGS_DIR / "experiments")
        for experiment_id, config in configs.items():
            defaults = experiment_defaults(experiment_id)
            assert canonical_json(config.params_for("full")) == canonical_json(defaults), (
                experiment_id
            )

    def test_bench_and_smoke_params_are_subsets_of_the_signature(self):
        configs = load_experiment_configs(CONFIGS_DIR / "experiments")
        for experiment_id, config in configs.items():
            known = set(experiment_defaults(experiment_id))
            for scale in ("bench", "smoke"):
                assert set(config.params_for(scale)) <= known, (experiment_id, scale)
