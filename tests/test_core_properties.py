"""Tests of the trace-based property verifiers (A.1/B.1/B.2, T-dynamic, static intervals)."""

import pytest

from repro.errors import VerificationError
from repro.types import Interval
from repro.dynamics.topology import Topology
from repro.problems import coloring_problem_pair
from repro.runtime.metrics import RoundMetrics
from repro.runtime.trace import ExecutionTrace
from repro.core.properties import (
    find_static_intervals,
    verify_extension,
    verify_locally_static,
    verify_never_retracts,
    verify_partial_solution_every_round,
    verify_t_dynamic,
)


def _metrics(r):
    return RoundMetrics(r, 0, 0, 0, 0, 0, 0, 0)


def _trace(outputs_per_round, topologies=None, n=4):
    trace = ExecutionTrace(n, "alg", "adv")
    default_topo = Topology(range(n), [(0, 1), (1, 2)])
    for i, outputs in enumerate(outputs_per_round):
        topo = topologies[i] if topologies else default_topo
        trace.record(topo, outputs, _metrics(i + 1))
    return trace


class TestExtensionAndRetraction:
    def test_extension_preserved(self):
        trace = _trace([{0: 5, 1: None, 2: None, 3: None}, {0: 5, 1: 2, 2: None, 3: None}])
        assert verify_extension(trace, {0: 5}) == []

    def test_extension_violation_detected(self):
        trace = _trace([{0: 7, 1: None, 2: None, 3: None}])
        problems = verify_extension(trace, {0: 5})
        assert len(problems) == 1 and "node 0" in problems[0]

    def test_no_input_is_trivially_fine(self):
        trace = _trace([{0: 1, 1: 1, 2: 1, 3: 1}])
        assert verify_extension(trace, None) == []

    def test_never_retracts(self):
        good = _trace([{0: None, 1: 1, 2: None, 3: None}, {0: 2, 1: 1, 2: None, 3: None}])
        assert verify_never_retracts(good) == []
        bad = _trace([{0: 1, 1: 1, 2: None, 3: None}, {0: 2, 1: 1, 2: None, 3: None}])
        assert len(verify_never_retracts(bad)) == 1


class TestPartialSolutionEveryRound:
    def test_detects_conflicts(self):
        pair = coloring_problem_pair()
        good = _trace([{0: 1, 1: 2, 2: 1, 3: None}])
        assert verify_partial_solution_every_round(good, pair) == []
        bad = _trace([{0: 1, 1: 1, 2: 2, 3: None}])
        assert len(verify_partial_solution_every_round(bad, pair)) == 1


class TestStaticIntervals:
    def test_full_trace_static(self):
        trace = _trace([{0: 1, 1: 1, 2: 1, 3: 1}] * 4)
        assert find_static_intervals(trace, 0, alpha=2) == [Interval(1, 4)]

    def test_change_splits_interval(self):
        stable = Topology(range(4), [(0, 1), (1, 2)])
        changed = Topology(range(4), [(0, 1), (1, 2), (0, 2)])
        trace = _trace(
            [{0: 1, 1: 1, 2: 1, 3: 1}] * 4,
            topologies=[stable, stable, changed, changed],
        )
        assert find_static_intervals(trace, 0, alpha=1) == [Interval(1, 2), Interval(3, 4)]
        # Node 3 is isolated: its ball never changes.
        assert find_static_intervals(trace, 3, alpha=1) == [Interval(1, 4)]

    def test_sleeping_rounds_excluded(self):
        awake_later = [Topology([0, 1], []), Topology([0, 1, 2], []), Topology([0, 1, 2], [])]
        trace = _trace(
            [{0: 1, 1: 1}, {0: 1, 1: 1, 2: 1}, {0: 1, 1: 1, 2: 1}],
            topologies=awake_later,
            n=3,
        )
        assert find_static_intervals(trace, 2, alpha=1) == [Interval(2, 3)]


class TestLocallyStaticVerification:
    def test_stable_output_passes(self):
        trace = _trace([{0: 1, 1: 2, 2: 1, 3: 1}] * 6)
        reports = verify_locally_static(trace, alpha=2, grace=2)
        assert reports and all(report.stabilised for report in reports)

    def test_changing_output_fails(self):
        rounds = [{0: r, 1: 2, 2: 1, 3: 1} for r in range(1, 7)]
        trace = _trace(rounds)
        reports = verify_locally_static(trace, alpha=2, grace=2, nodes=[0])
        assert reports and not reports[0].stabilised
        assert reports[0].changes_after_grace > 0

    def test_bottom_output_fails(self):
        trace = _trace([{0: None, 1: 2, 2: 1, 3: 1}] * 6)
        reports = verify_locally_static(trace, alpha=2, grace=2, nodes=[0])
        assert reports and not reports[0].stabilised

    def test_short_intervals_skipped(self):
        trace = _trace([{0: 1, 1: 1, 2: 1, 3: 1}] * 3)
        assert verify_locally_static(trace, alpha=2, grace=5, nodes=[0]) == []


class TestTDynamicVerification:
    def test_reports_and_raises(self):
        trace = _trace([{0: 1, 1: 1, 2: 2, 3: 1}])
        pair = coloring_problem_pair()
        problems = verify_t_dynamic(trace, pair, T=1)
        assert len(problems) == 1
        with pytest.raises(VerificationError):
            verify_t_dynamic(trace, pair, T=1, raise_on_failure=True)

    def test_valid_trace_passes(self):
        trace = _trace([{0: 1, 1: 2, 2: 1, 3: 1}] * 3)
        assert verify_t_dynamic(trace, coloring_problem_pair(), T=2) == []
