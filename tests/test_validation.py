"""Unit tests for :mod:`repro.utils.validation`."""

import pytest

from repro.errors import ConfigurationError
from repro.utils.validation import (
    check_non_negative,
    check_positive,
    check_probability,
    check_type,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive("x", 3) == 3
        assert check_positive("x", 0.5) == 0.5

    @pytest.mark.parametrize("value", [0, -1, -0.1])
    def test_rejects_non_positive(self, value):
        with pytest.raises(ConfigurationError):
            check_positive("x", value)

    def test_rejects_bool_and_str(self):
        with pytest.raises(ConfigurationError):
            check_positive("x", True)
        with pytest.raises(ConfigurationError):
            check_positive("x", "3")


class TestCheckNonNegative:
    def test_accepts_zero(self):
        assert check_non_negative("x", 0) == 0

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            check_non_negative("x", -2)


class TestCheckProbability:
    @pytest.mark.parametrize("value", [0, 0.5, 1])
    def test_accepts_unit_interval(self, value):
        assert check_probability("p", value) == float(value)

    @pytest.mark.parametrize("value", [-0.01, 1.01, 5])
    def test_rejects_outside(self, value):
        with pytest.raises(ConfigurationError):
            check_probability("p", value)


class TestCheckType:
    def test_accepts_matching_type(self):
        assert check_type("x", 3, int) == 3

    def test_accepts_tuple_of_types(self):
        assert check_type("x", 3.5, (int, float)) == 3.5

    def test_rejects_mismatch(self):
        with pytest.raises(ConfigurationError):
            check_type("x", "3", int)
