"""The ``repro`` CLI: run/sweep/experiments/validate/diff, and the drift gate.

The drift-gate tests mirror the CI ``config-drift`` job exactly: regenerate
smoke-scale rows from the committed configs into a scratch store, ``repro
diff`` it against the committed fixtures, and assert the exit code flips to 1
when a fixture is mutated.
"""

import json
import shutil
from pathlib import Path

from repro.analysis.experiments import experiment_e04_tdynamic_coloring
from repro.scenarios.cli import main
from repro.scenarios.configs import load_config
from repro.scenarios.store import ResultsStore, canonical_json

REPO_ROOT = Path(__file__).resolve().parent.parent
CONFIGS_DIR = REPO_ROOT / "configs"
COMMITTED_RESULTS = REPO_ROOT / "results"

SCENARIO_CONFIG = {
    "kind": "scenario",
    "spec": {
        "name": "tiny",
        "n": 16,
        "algorithm": "dynamic-coloring",
        "adversary": {"name": "flip-churn", "params": {"flip_prob": 0.01}},
        "rounds": "1*T1",
        "seeds": [0, 1],
        "metrics": [{"name": "validity", "params": {"problem": "coloring"}}],
    },
}


def write_config(tmp_path, payload, name="config.json"):
    path = tmp_path / name
    path.write_text(json.dumps(payload))
    return path


def experiments_cmd(*ids, store, extra=()):
    return [
        "experiments",
        *ids,
        "--smoke",
        "--serial",
        "--configs",
        str(CONFIGS_DIR),
        "--store",
        str(store),
        *extra,
    ]


class TestRun:
    def test_runs_and_stores_a_scenario_config(self, tmp_path, capsys):
        config = write_config(tmp_path, SCENARIO_CONFIG)
        assert main(["run", str(config), "--store", str(tmp_path / "store")]) == 0
        out = capsys.readouterr().out
        assert "tiny" in out and "valid_fraction" in out
        entries = list(ResultsStore(tmp_path / "store").entries("scenarios"))
        assert len(entries) == 1
        assert entries[0].label == "tiny"
        assert len(entries[0].rows) == 2  # one row per seed
        assert entries[0].rows[0]["seed"] == 0.0

    def test_no_store_prints_without_writing(self, tmp_path, capsys):
        config = write_config(tmp_path, SCENARIO_CONFIG)
        assert main(["run", str(config), "--no-store", "--store", str(tmp_path / "s")]) == 0
        assert "valid_fraction" in capsys.readouterr().out
        assert not (tmp_path / "s").exists()

    def test_typo_fails_validation_with_suggestion(self, tmp_path, capsys):
        bad = json.loads(json.dumps(SCENARIO_CONFIG))
        bad["spec"]["algorithm"] = "dynamic-colorng"
        config = write_config(tmp_path, bad)
        assert main(["run", str(config), "--store", str(tmp_path / "store")]) == 2
        err = capsys.readouterr().err
        assert "did you mean" in err and "dynamic-coloring" in err

    def test_wrong_config_kind_is_rejected(self, tmp_path, capsys):
        config = write_config(
            tmp_path,
            {"kind": "sweep", "spec": SCENARIO_CONFIG["spec"], "over": {"n": [8]}},
        )
        assert main(["run", str(config)]) == 1
        assert "use 'repro sweep'" in capsys.readouterr().err


class TestSweep:
    def test_runs_a_sweep_config(self, tmp_path, capsys):
        config = write_config(
            tmp_path,
            {
                "kind": "sweep",
                "spec": SCENARIO_CONFIG["spec"],
                "over": {"adversary.params.flip_prob": [0.0, 0.05]},
            },
        )
        assert main(["sweep", str(config), "--store", str(tmp_path / "store")]) == 0
        entries = list(ResultsStore(tmp_path / "store").entries("sweeps"))
        assert len(entries) == 1
        # 2 grid points x 2 seeds, each row carrying its overrides.
        assert len(entries[0].rows) == 4
        assert entries[0].rows[0]["adversary.params.flip_prob"] == 0.0


class TestValidate:
    def test_committed_configs_are_valid(self, capsys):
        assert main(["validate", str(CONFIGS_DIR)]) == 0
        assert "configs valid" in capsys.readouterr().out

    def test_invalid_config_fails(self, tmp_path, capsys):
        bad = json.loads(json.dumps(SCENARIO_CONFIG))
        bad["spec"]["adversary"] = {"name": "flip-churnn", "params": {}}
        write_config(tmp_path, bad)
        assert main(["validate", str(tmp_path)]) == 1
        err = capsys.readouterr().err
        assert "flip-churn" in err and "did you mean" in err


class TestExperiments:
    def test_smoke_run_stores_and_reruns_unchanged(self, tmp_path, capsys):
        store = tmp_path / "store"
        assert main(experiments_cmd("e04", store=store)) == 0
        assert "[created:" in capsys.readouterr().out
        assert main(experiments_cmd("e04", store=store)) == 0
        assert "[unchanged:" in capsys.readouterr().out  # idempotent rerun

    def test_rows_byte_identical_to_direct_entry_point(self, tmp_path):
        store = tmp_path / "store"
        assert main(experiments_cmd("e04", store=store)) == 0
        (entry,) = ResultsStore(store).entries("smoke")
        config = load_config(CONFIGS_DIR / "experiments" / "e04.json")
        direct = experiment_e04_tdynamic_coloring(**config.params_for("smoke"))
        assert canonical_json([dict(r) for r in entry.rows]) == canonical_json(direct)

    def test_unknown_id_fails(self, tmp_path, capsys):
        assert main(experiments_cmd("e99", store=tmp_path)) == 1
        assert "no committed config" in capsys.readouterr().err

    def test_list_shows_committed_configs(self, capsys):
        assert main(["experiments", "--list", "--configs", str(CONFIGS_DIR)]) == 0
        out = capsys.readouterr().out
        for experiment_id in ("e01", "e07", "e13"):
            assert experiment_id in out

    def test_tables_file_written(self, tmp_path):
        tables = tmp_path / "tables.txt"
        cmd = experiments_cmd("e04", store=tmp_path / "s", extra=("--tables", str(tables)))
        assert main(cmd) == 0
        assert "E4" in tables.read_text()


class TestBench:
    def test_smoke_bench_reports_timings(self, tmp_path, capsys):
        assert (
            main(
                [
                    "bench",
                    "e04",
                    "--smoke",
                    "--serial",
                    "--configs",
                    str(CONFIGS_DIR),
                    "--store",
                    str(tmp_path / "store"),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "seconds" in out
        assert list(ResultsStore(tmp_path / "store").entries("smoke"))


class TestDriftGate:
    """The config-drift CI job, end to end, against the committed fixtures."""

    def test_committed_smoke_fixture_matches_regeneration(self, tmp_path):
        store = tmp_path / "fresh"
        assert main(experiments_cmd("e04", store=store)) == 0
        (fresh,) = ResultsStore(store).entries("smoke")
        (committed_path,) = (COMMITTED_RESULTS / "smoke").glob("e04-*.json")
        committed = ResultsStore.load(committed_path)
        assert committed.key_hash == fresh.key_hash
        assert canonical_json([dict(r) for r in committed.rows]) == canonical_json(
            [dict(r) for r in fresh.rows]
        )

    def test_diff_gate_passes_then_fails_on_mutated_fixture(self, tmp_path, capsys):
        fixtures = tmp_path / "fixtures" / "smoke"
        fixtures.mkdir(parents=True)
        (committed_path,) = (COMMITTED_RESULTS / "smoke").glob("e04-*.json")
        shutil.copy(committed_path, fixtures / committed_path.name)

        fresh = tmp_path / "fresh"
        assert main(experiments_cmd("e04", store=fresh)) == 0
        assert main(["diff", str(tmp_path / "fixtures"), str(fresh), "--kind", "smoke"]) == 0

        # Mutate one cell of the committed fixture: the gate must now fail.
        data = json.loads((fixtures / committed_path.name).read_text())
        column = sorted(data["rows"][0])[0]
        data["rows"][0][column] = -123.0
        (fixtures / committed_path.name).write_text(json.dumps(data))
        capsys.readouterr()
        assert main(["diff", str(tmp_path / "fixtures"), str(fresh), "--kind", "smoke"]) == 1
        assert "rows differ" in capsys.readouterr().out

    def test_diff_refuses_missing_store(self, tmp_path, capsys):
        (tmp_path / "exists").mkdir()
        assert main(["diff", str(tmp_path / "nope"), str(tmp_path / "exists")]) == 1
        assert "does not exist" in capsys.readouterr().err


class TestComponents:
    def test_lists_every_registry_family(self, capsys):
        assert main(["components"]) == 0
        out = capsys.readouterr().out
        for family in ("topologies", "adversaries", "algorithms", "metrics"):
            assert family in out
