"""Unit tests for the topology generators."""

import pytest

from repro.errors import ConfigurationError
from repro.dynamics import generators


class TestDeterministicFamilies:
    def test_ring(self):
        topo = generators.ring(5)
        assert topo.num_nodes == 5 and topo.num_edges == 5
        assert all(topo.degree(v) == 2 for v in topo.nodes)

    def test_ring_small_cases(self):
        assert generators.ring(1).num_edges == 0
        assert generators.ring(2).num_edges == 1

    def test_path(self):
        topo = generators.path(5)
        assert topo.num_edges == 4
        assert topo.degree(0) == 1 and topo.degree(2) == 2

    def test_star(self):
        topo = generators.star(6)
        assert topo.degree(0) == 5
        assert all(topo.degree(v) == 1 for v in range(1, 6))

    def test_clique(self):
        topo = generators.clique(5)
        assert topo.num_edges == 10

    def test_grid_and_torus(self):
        grid = generators.grid(3, 4)
        torus = generators.torus(3, 4)
        assert grid.num_nodes == 12 and torus.num_nodes == 12
        assert grid.num_edges == 3 * 3 + 2 * 4  # horizontal + vertical
        assert all(torus.degree(v) in (3, 4) for v in torus.nodes)

    def test_empty(self):
        topo = generators.empty(7)
        assert topo.num_nodes == 7 and topo.num_edges == 0


class TestRandomFamilies:
    def test_gnp_reproducible(self, rng_factory):
        a = generators.gnp(30, 0.2, rng_factory.stream("g"))
        b = generators.gnp(30, 0.2, rng_factory.stream("g"))
        assert a == b

    def test_gnp_rejects_bad_probability(self, rng_factory):
        with pytest.raises(ConfigurationError):
            generators.gnp(10, 1.5, rng_factory.stream("g"))

    def test_random_regular_degrees(self, rng_factory):
        topo = generators.random_regular(20, 4, rng_factory.stream("r"))
        assert all(topo.degree(v) == 4 for v in topo.nodes)

    def test_random_regular_parity_check(self, rng_factory):
        with pytest.raises(ConfigurationError):
            generators.random_regular(5, 3, rng_factory.stream("r"))

    def test_random_geometric_radius(self, rng_factory):
        topo = generators.random_geometric(40, 0.3, rng_factory.stream("geo"))
        assert topo.num_nodes == 40

    def test_barabasi_albert(self, rng_factory):
        topo = generators.barabasi_albert(30, 2, rng_factory.stream("ba"))
        assert topo.num_nodes == 30
        assert topo.num_edges >= 2 * (30 - 2) - 2


class TestRegistry:
    @pytest.mark.parametrize("name", sorted(generators.GENERATORS))
    def test_every_family_generates(self, name, rng_factory):
        topo = generators.by_name(name, 20, rng_factory.stream("byname", name))
        assert 1 <= topo.num_nodes <= 20
        assert all(0 <= v < 20 for v in topo.nodes)

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            generators.by_name("nope", 10)

    def test_default_rng_is_deterministic(self):
        assert generators.by_name("gnp_sparse", 16) == generators.by_name("gnp_sparse", 16)
