"""Tests of the MIS algorithms (Algorithms 4, 5, Luby, Ghaffari, combined, baselines)."""

import pytest

from repro.dynamics import generators
from repro.dynamics.adversaries import ChurnAdversary, ScriptedAdversary, StaticAdversary
from repro.dynamics.churn import FlipChurn
from repro.dynamics.topology import Topology
from repro.problems import mis_problem_pair
from repro.problems.mis import is_maximal_independent_set
from repro.runtime.simulator import Simulator, run_simulation
from repro.utils.rng import RngFactory
from repro.core import default_window, verify_never_retracts, verify_t_dynamic
from repro.algorithms.mis import (
    DMis,
    DynamicMIS,
    GhaffariMIS,
    LubyMIS,
    RestartMis,
    SMis,
    SMisNoUndecideAblation,
    dynamic_mis,
    greedy_mis,
)
from repro.analysis.conflicts import count_mis_violations
from repro.analysis.convergence import rounds_to_completion


def mis_members(assignment):
    return {v for v, value in assignment.items() if value == 1}


class TestGreedyMis:
    def test_produces_mis(self, medium_gnp):
        assert is_maximal_independent_set(medium_gnp, greedy_mis(medium_gnp))

    def test_custom_order(self, path4):
        assert greedy_mis(path4, order=[1, 3, 0, 2]) == frozenset({1, 3})

    def test_empty_graph(self):
        assert greedy_mis(generators.empty(5)) == frozenset(range(5))


class TestLubyAndGhaffari:
    @pytest.mark.parametrize("factory", [LubyMIS, GhaffariMIS])
    def test_computes_mis_on_static_graph(self, factory, medium_gnp):
        n = medium_gnp.num_nodes
        trace = run_simulation(
            n=n, algorithm=factory(), adversary=StaticAdversary(medium_gnp), rounds=80, seed=1
        )
        final = trace.outputs(trace.num_rounds)
        assert all(value is not None for value in final.values())
        assert is_maximal_independent_set(medium_gnp, mis_members(final))

    def test_luby_completion_within_window(self, medium_gnp):
        n = medium_gnp.num_nodes
        trace = run_simulation(
            n=n, algorithm=LubyMIS(), adversary=StaticAdversary(medium_gnp), rounds=80, seed=2
        )
        done = rounds_to_completion(trace)
        assert done is not None and done <= default_window(n)


class TestDMis:
    def test_input_extension_and_monotonicity(self, medium_gnp):
        n = medium_gnp.num_nodes
        # Input: node 0 in the MIS, its neighbours dominated (a valid partial solution).
        seed_member = 0
        input_assignment = {seed_member: 1}
        for u in medium_gnp.neighbors(seed_member):
            input_assignment[u] = 0
        adversary = ChurnAdversary(n, FlipChurn(medium_gnp, 0.03), RngFactory(3).stream("adv"))
        trace = run_simulation(
            n=n,
            algorithm=DMis(),
            adversary=adversary,
            rounds=50,
            seed=3,
            input_assignment=input_assignment,
        )
        assert verify_never_retracts(trace) == []
        final = trace.outputs(trace.num_rounds)
        for v, value in input_assignment.items():
            assert final[v] == value

    def test_all_decided_within_window_under_churn(self, medium_gnp):
        n = medium_gnp.num_nodes
        adversary = ChurnAdversary(n, FlipChurn(medium_gnp, 0.03), RngFactory(4).stream("adv"))
        trace = run_simulation(n=n, algorithm=DMis(), adversary=adversary, rounds=default_window(n), seed=4)
        final = trace.outputs(trace.num_rounds)
        assert all(value is not None for value in final.values())

    def test_independence_on_intersection_graph(self, medium_gnp):
        n = medium_gnp.num_nodes
        adversary = ChurnAdversary(n, FlipChurn(medium_gnp, 0.08), RngFactory(5).stream("adv"))
        trace = run_simulation(n=n, algorithm=DMis(), adversary=adversary, rounds=40, seed=5)
        final = trace.outputs(trace.num_rounds)
        intersection = trace.graph.intersection_graph(trace.num_rounds, trace.num_rounds)
        independence, _ = count_mis_violations(intersection, final)
        assert independence == 0

    def test_domination_on_union_graph(self, medium_gnp):
        n = medium_gnp.num_nodes
        adversary = ChurnAdversary(n, FlipChurn(medium_gnp, 0.03), RngFactory(6).stream("adv"))
        trace = run_simulation(n=n, algorithm=DMis(), adversary=adversary, rounds=60, seed=6)
        final = trace.outputs(trace.num_rounds)
        union = trace.graph.union_graph(trace.num_rounds, trace.num_rounds)
        _, domination = count_mis_violations(union, final)
        assert domination == 0

    def test_static_equivalence_with_luby(self, medium_gnp):
        """On a static graph DMis's output is a correct MIS (it *is* pipelined Luby)."""
        n = medium_gnp.num_nodes
        trace = run_simulation(n=n, algorithm=DMis(), adversary=StaticAdversary(medium_gnp), rounds=60, seed=7)
        final = trace.outputs(trace.num_rounds)
        assert is_maximal_independent_set(medium_gnp, mis_members(final))

    def test_undecided_count_metric(self, small_gnp):
        n = small_gnp.num_nodes
        algorithm = DMis()
        sim = Simulator(n=n, algorithm=algorithm, adversary=StaticAdversary(small_gnp), seed=8)
        sim.run(1)
        assert 0 <= algorithm.undecided_count() <= n
        sim.run(default_window(n))
        assert algorithm.undecided_count() == 0


class TestSMis:
    def test_independence_always_holds_on_current_graph(self, medium_gnp):
        n = medium_gnp.num_nodes
        adversary = ChurnAdversary(n, FlipChurn(medium_gnp, 0.05), RngFactory(9).stream("adv"))
        trace = run_simulation(n=n, algorithm=SMis(), adversary=adversary, rounds=60, seed=9)
        for r in trace.rounds():
            independence, _ = count_mis_violations(trace.topology(r), trace.outputs(r))
            assert independence == 0

    def test_decides_static_graph_and_stays(self, medium_gnp):
        n = medium_gnp.num_nodes
        trace = run_simulation(n=n, algorithm=SMis(), adversary=StaticAdversary(medium_gnp), rounds=80, seed=10)
        done = rounds_to_completion(trace)
        assert done is not None
        final = trace.outputs(trace.num_rounds)
        assert is_maximal_independent_set(medium_gnp, mis_members(final))
        # No output changes after the decision round.
        for r in range(done + 1, trace.num_rounds + 1):
            assert trace.outputs(r) == final

    def test_mis_nodes_leave_on_conflict_edge(self):
        apart = Topology([0, 1], [])
        joined = Topology([0, 1], [(0, 1)])
        adversary = ScriptedAdversary([apart] * 4 + [joined] * 10)
        trace = run_simulation(n=2, algorithm=SMis(), adversary=adversary, rounds=14, seed=11)
        assert trace.outputs(4) == {0: 1, 1: 1}  # both isolated nodes join the MIS
        after = trace.outputs(5)
        assert after[0] is None and after[1] is None  # both receive marks and leave
        final = trace.outputs(14)
        assert sorted(final.values()) == [0, 1]  # resolved into one MIS node + one dominated

    def test_dominated_node_undecides_when_dominator_vanishes(self):
        pair_graph = Topology([0, 1], [(0, 1)])
        apart = Topology([0, 1], [])
        adversary = ScriptedAdversary([pair_graph] * 8 + [apart] * 3)
        trace = run_simulation(n=2, algorithm=SMis(), adversary=adversary, rounds=11, seed=12)
        decided = trace.outputs(8)
        assert sorted(decided.values()) == [0, 1]
        dominated_node = next(v for v, value in decided.items() if value == 0)
        # Once isolated, the dominated node loses its dominator and becomes undecided,
        # then (being isolated) joins the MIS.
        final = trace.outputs(11)
        assert final[dominated_node] == 1

    def test_desire_levels_bounded(self, small_gnp):
        n = small_gnp.num_nodes
        algorithm = SMis()
        adversary = ChurnAdversary(n, FlipChurn(small_gnp, 0.1), RngFactory(13).stream("adv"))
        sim = Simulator(n=n, algorithm=algorithm, adversary=adversary, seed=13)
        for _ in range(20):
            sim.run(1)
            for v in range(n):
                assert 1.0 / (5 * n) <= algorithm.desire_level_of(v) <= 0.5

    def test_no_undecide_ablation_keeps_adjacent_mis_nodes(self):
        apart = Topology([0, 1], [])
        joined = Topology([0, 1], [(0, 1)])
        adversary = ScriptedAdversary([apart] * 4 + [joined] * 4)
        trace = run_simulation(n=2, algorithm=SMisNoUndecideAblation(), adversary=adversary, rounds=8, seed=14)
        final = trace.outputs(8)
        assert final == {0: 1, 1: 1}  # the violation is never repaired


class TestDynamicMIS:
    def test_t_dynamic_validity_mostly_holds_under_churn(self, medium_gnp):
        n = medium_gnp.num_nodes
        T1 = default_window(n)
        adversary = ChurnAdversary(n, FlipChurn(medium_gnp, 0.02), RngFactory(15).stream("adv"))
        trace = run_simulation(n=n, algorithm=DynamicMIS(T1), adversary=adversary, rounds=3 * T1, seed=15)
        violations = verify_t_dynamic(trace, mis_problem_pair(), T1)
        # The strict per-round check admits rare transient domination holes
        # (see EXPERIMENTS.md, observed deviation for MIS); the overwhelming
        # majority of rounds must be valid.
        assert len(violations) <= 0.1 * trace.num_rounds

    def test_perfect_on_static_graph(self, small_gnp):
        n = small_gnp.num_nodes
        T1 = default_window(n)
        trace = run_simulation(
            n=n, algorithm=DynamicMIS(T1), adversary=StaticAdversary(small_gnp), rounds=3 * T1, seed=16
        )
        assert verify_t_dynamic(trace, mis_problem_pair(), T1) == []
        final = trace.outputs(trace.num_rounds)
        assert is_maximal_independent_set(small_gnp, mis_members(final))

    def test_stable_on_static_graph(self, small_gnp):
        n = small_gnp.num_nodes
        T1 = default_window(n)
        trace = run_simulation(
            n=n, algorithm=DynamicMIS(T1), adversary=StaticAdversary(small_gnp), rounds=4 * T1, seed=17
        )
        grace = 2 * T1
        for v in range(n):
            values = {trace.output_of(v, r) for r in range(grace + 1, trace.num_rounds + 1)}
            assert len(values) == 1 and None not in values

    def test_factory(self):
        assert dynamic_mis(300).T1 == default_window(300)
        assert dynamic_mis(300, window=11).T1 == 11


class TestRestartMisBaseline:
    def test_period_validated(self):
        with pytest.raises(Exception):
            RestartMis(0)

    def test_restart_wipes_outputs(self, small_gnp):
        n = small_gnp.num_nodes
        algorithm = RestartMis(6)
        trace = run_simulation(n=n, algorithm=algorithm, adversary=StaticAdversary(small_gnp), rounds=40, seed=18)
        assert len(verify_never_retracts(trace)) > 0
        assert algorithm.metrics()["restarts"] > 0
        assert algorithm.period == 6
