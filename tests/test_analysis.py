"""Tests of the analysis helpers (conflicts, stability, convergence, quality, sweep, report)."""

import math

import pytest

from repro.types import Interval
from repro.dynamics import generators
from repro.dynamics.topology import Topology
from repro.runtime.metrics import RoundMetrics
from repro.runtime.trace import ExecutionTrace
from repro.analysis.conflicts import (
    conflict_resolution_times,
    count_mis_violations,
    count_monochromatic_edges,
)
from repro.analysis.convergence import (
    completion_round_for_nodes,
    first_round_all_decided,
    rounds_to_completion,
)
from repro.analysis.quality import coloring_quality, matching_quality, mis_quality
from repro.analysis.report import format_table, rows_to_csv
from repro.analysis.stability import (
    changes_per_round,
    output_change_counts,
    region_change_count,
    stability_summary,
)
from repro.analysis.sweep import Replication, aggregate_rows, replicate
from repro.errors import ConfigurationError


def _metrics(r, changed=0):
    return RoundMetrics(r, 2, 1, 2, 2, 4, 8, changed)


def build_trace(outputs_list, topo=None, n=3):
    topo = topo if topo is not None else Topology(range(n), [(0, 1), (1, 2)])
    trace = ExecutionTrace(n, "alg", "adv")
    for i, outputs in enumerate(outputs_list):
        changed = 0 if i == 0 else sum(1 for v in outputs if outputs[v] != outputs_list[i - 1].get(v))
        trace.record(topo, outputs, _metrics(i + 1, changed))
    return trace


class TestConflicts:
    def test_monochromatic_edges(self, triangle):
        assert count_monochromatic_edges(triangle, {0: 1, 1: 1, 2: 2}) == 1
        assert count_monochromatic_edges(triangle, {0: 1, 1: 2, 2: 3}) == 0
        assert count_monochromatic_edges(triangle, {0: None, 1: None, 2: None}) == 0

    def test_mis_violations(self, path4):
        independence, domination = count_mis_violations(path4, {0: 1, 1: 1, 2: 0, 3: 0})
        assert independence == 1
        assert domination == 1  # node 3 dominated by nobody

    def test_conflict_resolution_times(self):
        outputs = [
            {0: 1, 1: 1},
            {0: 1, 1: 1},
            {0: 1, 1: 2},
        ]
        trace = build_trace(outputs, topo=Topology([0, 1], [(0, 1)]), n=2)
        results = conflict_resolution_times(trace, [(1, (0, 1))])
        assert results[0]["duration"] == 2.0 and results[0]["censored"] == 0.0
        never_resolved = build_trace([{0: 1, 1: 1}] * 3, topo=Topology([0, 1], [(0, 1)]), n=2)
        censored = conflict_resolution_times(never_resolved, [(1, (0, 1))])
        assert censored[0]["censored"] == 1.0 and censored[0]["duration"] == 3.0


class TestStability:
    def test_output_change_counts(self):
        trace = build_trace([{0: 1, 1: 1, 2: 1}, {0: 2, 1: 1, 2: 1}, {0: 2, 1: 3, 2: 1}])
        counts = output_change_counts(trace)
        assert counts == {0: 1, 1: 1}

    def test_changes_per_round_matches_metrics(self):
        trace = build_trace([{0: 1, 1: 1, 2: 1}, {0: 2, 1: 1, 2: 1}])
        assert changes_per_round(trace) == [0, 1]

    def test_region_change_count(self):
        trace = build_trace([{0: 1, 1: 1, 2: 1}, {0: 2, 1: 1, 2: 1}, {0: 3, 1: 1, 2: 1}])
        assert region_change_count(trace, [0], Interval(1, 3)) == 2
        assert region_change_count(trace, [1, 2], Interval(1, 3)) == 0

    def test_stability_summary(self):
        trace = build_trace([{0: 1, 1: 1, 2: 1}] * 3 + [{0: 2, 1: 1, 2: 1}])
        summary = stability_summary(trace)
        assert summary["mean_changes"] == pytest.approx(1 / 3)
        assert summary["max_changes"] == 1.0
        assert 0 < summary["change_rate"] < 1

    def test_stability_summary_empty(self):
        trace = build_trace([{0: 1, 1: 1, 2: 1}])
        assert stability_summary(trace)["rounds"] == 0.0


class TestConvergence:
    def test_first_round_all_decided(self):
        trace = build_trace([{0: None, 1: 1, 2: 1}, {0: 1, 1: 1, 2: 1}])
        assert first_round_all_decided(trace) == 2
        assert rounds_to_completion(trace) == 2
        assert rounds_to_completion(trace, start_round=2) == 1

    def test_never_completes(self):
        trace = build_trace([{0: None, 1: 1, 2: 1}] * 3)
        assert first_round_all_decided(trace) is None
        assert rounds_to_completion(trace) is None

    def test_completion_for_subset(self):
        trace = build_trace([{0: None, 1: 1, 2: None}, {0: None, 1: 1, 2: 2}])
        assert completion_round_for_nodes(trace, [1, 2]) == 2
        assert completion_round_for_nodes(trace, [0]) is None


class TestQuality:
    def test_coloring_quality(self, path4):
        stats = coloring_quality(path4, {0: 1, 1: 2, 2: 1, 3: 2})
        assert stats["colors_used"] == 2.0
        assert stats["uncolored"] == 0.0
        assert stats["max_degree_plus_one"] == 3.0

    def test_mis_quality(self, path4):
        stats = mis_quality(path4, {0: 1, 1: 0, 2: 1, 3: 0})
        assert stats["mis_size"] == 2.0 and stats["undecided"] == 0.0

    def test_matching_quality(self, path4):
        from repro.problems.matching import UNMATCHED

        stats = matching_quality(path4, {0: 1, 1: 0, 2: UNMATCHED, 3: None})
        assert stats["matched_pairs"] == 1.0
        assert stats["unmatched"] == 1.0 and stats["undecided"] == 1.0


class TestSweep:
    def test_replicate_and_aggregate(self):
        replication = replicate(lambda seed: {"value": float(seed)}, seeds=[1, 2, 3], label="demo")
        assert replication.mean("value") == 2.0
        assert replication.max("value") == 3.0
        assert replication.std("value") == pytest.approx(math.sqrt(2 / 3))
        row = aggregate_rows(replication, mean_keys=("value",), std_keys=("value",), max_keys=("value",), extra={"n": 5.0})
        assert row["value_mean"] == 2.0 and row["replicas"] == 3.0 and row["n"] == 5.0

    def test_replicate_requires_seeds(self):
        with pytest.raises(ConfigurationError):
            replicate(lambda seed: {"x": 1.0}, seeds=[])

    def test_nan_values_skipped(self):
        replication = Replication("x", ({"v": float("nan")}, {"v": 4.0}))
        assert replication.mean("v") == 4.0

    def test_missing_key_gives_nan(self):
        replication = Replication("x", ({"v": 1.0},))
        assert math.isnan(replication.mean("other"))


class TestReport:
    def test_format_table_alignment_and_values(self):
        rows = [{"n": 32, "value": 1.23456, "label": "abc"}, {"n": 256, "value": 7.0, "label": "d"}]
        text = format_table(rows, title="demo", precision=2)
        assert "demo" in text and "1.23" in text and "256" in text
        assert text.count("\n") >= 4

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([], title="empty")

    def test_format_nan(self):
        assert "nan" in format_table([{"x": float("nan")}])

    def test_rows_to_csv(self):
        csv = rows_to_csv([{"a": 1, "b": 2.5}, {"a": 3, "b": 4.0}])
        lines = csv.strip().split("\n")
        assert lines[0] == "a,b" and len(lines) == 3

    def test_rows_to_csv_empty(self):
        assert rows_to_csv([]) == ""

    def test_quality_against_generators(self, rng_factory):
        """Smoke: quality helpers run on generated graphs without error."""
        topo = generators.gnp(20, 0.2, rng_factory.stream("q"))
        from repro.algorithms.coloring.greedy import greedy_coloring

        stats = coloring_quality(topo, greedy_coloring(topo))
        assert stats["colors_used"] <= stats["max_degree_plus_one"]
