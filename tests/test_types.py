"""Unit tests for :mod:`repro.types`."""

import pytest

from repro.types import (
    BOTTOM,
    Interval,
    MisState,
    canonical_edge,
    mis_state_to_value,
    value_to_mis_state,
)


class TestCanonicalEdge:
    def test_orders_endpoints(self):
        assert canonical_edge(5, 2) == (2, 5)
        assert canonical_edge(2, 5) == (2, 5)

    def test_rejects_self_loop(self):
        with pytest.raises(ValueError):
            canonical_edge(3, 3)


class TestMisState:
    def test_decided_flags(self):
        assert MisState.MIS.decided
        assert MisState.DOMINATED.decided
        assert not MisState.UNDECIDED.decided

    def test_roundtrip_values(self):
        for state in MisState:
            assert value_to_mis_state(mis_state_to_value(state)) is state

    def test_value_encoding_matches_paper(self):
        assert mis_state_to_value(MisState.MIS) == 1
        assert mis_state_to_value(MisState.DOMINATED) == 0
        assert mis_state_to_value(MisState.UNDECIDED) is BOTTOM

    def test_invalid_value_rejected(self):
        with pytest.raises(ValueError):
            value_to_mis_state(7)


class TestInterval:
    def test_membership_and_length(self):
        interval = Interval(3, 7)
        assert 3 in interval and 7 in interval and 5 in interval
        assert 2 not in interval and 8 not in interval
        assert len(interval) == 5

    def test_empty_interval_rejected(self):
        with pytest.raises(ValueError):
            Interval(5, 4)

    def test_shift(self):
        assert Interval(1, 3).shift(4) == Interval(5, 7)

    def test_intersect_overlap(self):
        assert Interval(1, 5).intersect(Interval(4, 9)) == Interval(4, 5)

    def test_intersect_disjoint(self):
        assert Interval(1, 3).intersect(Interval(5, 9)) is None

    def test_non_integer_not_member(self):
        assert "3" not in Interval(1, 5)
