"""Tests of the core framework: window defaults, Concat mechanics, runner helpers."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.dynamics import generators
from repro.dynamics.adversaries import StaticAdversary
from repro.problems import coloring_problem_pair, mis_problem_pair
from repro.runtime.simulator import run_simulation
from repro.core import Concat, default_window, run_combined, run_dynamic_problem, window_for
from repro.algorithms.common import NullBackbone
from repro.algorithms.coloring import DColor, SColor, DynamicColoring
from repro.algorithms.mis import DMis, SMis, DynamicMIS
from repro.analysis.experiments.common import churn_adversary


class TestWindowDefaults:
    def test_grows_logarithmically(self):
        assert default_window(1024) > default_window(32)
        ratio = default_window(2**16) / math.log2(2**16)
        assert 3.0 <= ratio <= 6.0

    def test_minimum_enforced(self):
        assert default_window(2) >= 8

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            default_window(0)
        with pytest.raises(ConfigurationError):
            default_window(8, multiplier=0)

    def test_window_for_scaling(self):
        assert window_for(128, 0.5) < window_for(128, 1.0)
        assert window_for(128, 0.01) >= 2


class TestConcatMechanics:
    def test_requires_t1_at_least_two(self):
        with pytest.raises(ConfigurationError):
            Concat(SColor, DColor, T1=1)

    def test_keeps_at_most_t1_minus_one_instances(self):
        n = 12
        topo = generators.ring(n)
        algorithm = Concat(SColor, DColor, T1=4)
        run_simulation(n=n, algorithm=algorithm, adversary=StaticAdversary(topo), rounds=10, seed=1)
        assert algorithm.live_instances == 3

    def test_problem_pair_taken_from_backbone(self):
        algorithm = Concat(SMis, DMis, T1=3)
        assert algorithm.problem_pair().name == mis_problem_pair().name

    def test_named_subclasses(self):
        assert DynamicColoring(4).name == "dynamic-coloring"
        assert DynamicMIS(4).name == "dynamic-mis"
        assert DynamicColoring(4).T1 == 4

    def test_output_is_oldest_instance_and_backbone_exposed(self):
        n = 10
        topo = generators.ring(n)
        algorithm = DynamicColoring(5)
        trace = run_simulation(n=n, algorithm=algorithm, adversary=StaticAdversary(topo), rounds=20, seed=3)
        final = trace.outputs(trace.num_rounds)
        # On a static ring everything is coloured long before round 20, and the
        # backbone agrees with the combiner output once stable.
        assert all(value is not None for value in final.values())
        for v in range(n):
            assert algorithm.backbone_output(v) == final[v]

    def test_metrics_and_state_summary(self):
        n = 8
        topo = generators.ring(n)
        algorithm = DynamicColoring(3)
        run_simulation(n=n, algorithm=algorithm, adversary=StaticAdversary(topo), rounds=5, seed=0)
        assert algorithm.metrics()["live_instances"] == 2.0
        summary = algorithm.state_summary()
        assert summary["round"] == 5 and len(summary["live_instances"]) == 2

    def test_null_backbone_outputs_bottom(self):
        n = 8
        topo = generators.ring(n)
        backbone = NullBackbone(coloring_problem_pair)
        trace = run_simulation(n=n, algorithm=backbone, adversary=StaticAdversary(topo), rounds=3, seed=0)
        assert all(value is None for value in trace.outputs(3).values())
        assert backbone.problem_pair().name == coloring_problem_pair().name


class TestRunnerHelpers:
    def test_run_combined_returns_validity(self):
        n = 24
        base = generators.gnp(n, 0.2, __import__("numpy").random.default_rng(0))
        result = run_combined(
            n=n,
            static_factory=SColor,
            dynamic_factory=DColor,
            adversary=churn_adversary(base, 1, flip_prob=0.02),
            rounds=40,
            seed=1,
            window=12,
        )
        assert result.window == 12
        assert result.trace.num_rounds == 40
        assert 0.0 <= result.valid_fraction <= 1.0
        assert result.validity["rounds_checked"] == 40.0

    def test_run_dynamic_problem_accepts_any_algorithm(self):
        n = 16
        base = generators.ring(n)
        result = run_dynamic_problem(
            n=n,
            algorithm=SColor(),
            pair=coloring_problem_pair(),
            adversary=StaticAdversary(base),
            rounds=25,
            seed=2,
        )
        assert result.trace.algorithm_name == "scolor"
        assert result.valid_fraction > 0.0
