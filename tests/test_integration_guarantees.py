"""Integration tests: end-to-end runs checking the paper's headline guarantees.

These are the test-suite versions of the experiments — smaller sizes, hard
assertions.  They exercise the full stack (generators → adversaries →
simulator → Concat-combined algorithms → trace checkers).
"""

import pytest

from repro.types import Interval
from repro.utils.rng import RngFactory
from repro.dynamics import generators
from repro.dynamics.adversaries import (
    ChurnAdversary,
    FreezeAfterAdversary,
    LocallyStaticAdversary,
    MobilityAdversary,
    TargetedColoringAdversary,
)
from repro.dynamics.churn import FlipChurn
from repro.dynamics.mobility import RandomWaypointMobility
from repro.dynamics.wakeup import StaggeredWakeup, UniformRandomWakeup
from repro.problems import TDynamicSpec, coloring_problem_pair, mis_problem_pair
from repro.runtime.simulator import run_simulation
from repro.core import default_window, verify_locally_static, verify_t_dynamic
from repro.algorithms.coloring import DynamicColoring
from repro.algorithms.mis import DynamicMIS, SMis
from repro.analysis.conflicts import conflict_resolution_times
from repro.analysis.convergence import rounds_to_completion
from repro.analysis.stability import region_change_count

N = 40
T1 = default_window(N)


def make_base(seed: int):
    return generators.gnp(N, 0.15, RngFactory(seed).stream("base"))


class TestTheorem11Guarantees:
    def test_coloring_t_dynamic_every_round_under_churn(self):
        base = make_base(1)
        adversary = ChurnAdversary(N, FlipChurn(base, 0.03), RngFactory(1).stream("adv"))
        trace = run_simulation(n=N, algorithm=DynamicColoring(T1), adversary=adversary, rounds=3 * T1, seed=1)
        assert verify_t_dynamic(trace, coloring_problem_pair(), T1) == []

    def test_mis_t_dynamic_high_validity_under_churn(self):
        base = make_base(2)
        adversary = ChurnAdversary(N, FlipChurn(base, 0.03), RngFactory(2).stream("adv"))
        trace = run_simulation(n=N, algorithm=DynamicMIS(T1), adversary=adversary, rounds=3 * T1, seed=2)
        spec = TDynamicSpec(mis_problem_pair(), T1)
        assert spec.validity_summary(trace)["valid_fraction"] >= 0.9

    def test_locally_static_region_keeps_fixed_output(self):
        # A grid keeps balls small, so the protected region is a genuine
        # sub-region of the graph (in a sparse Gnp of this size a radius-3
        # ball would swallow almost every node).
        base = generators.grid(7, 7)
        n = base.num_nodes
        T = default_window(n)
        center = 24  # middle of the 7x7 grid
        adversary = LocallyStaticAdversary(
            base, center=center, protected_radius=3, churn=FlipChurn(base, 0.08), rng=RngFactory(3).stream("adv")
        )
        rounds = 5 * T
        trace = run_simulation(n=n, algorithm=DynamicColoring(T), adversary=adversary, rounds=rounds, seed=3)
        protected = adversary.protected_nodes
        inner = {v for v in protected if base.ball(v, 2) <= protected}
        assert inner  # the scenario actually protects something
        grace_interval = Interval(2 * T + 2, rounds)
        assert region_change_count(trace, inner, grace_interval) == 0
        # Control: churned region does change under an 8% flip rate.
        outside = set(base.nodes) - protected
        assert outside and region_change_count(trace, outside, grace_interval) > 0

    def test_verify_locally_static_on_static_graph(self):
        base = make_base(4)
        trace = run_simulation(
            n=N, algorithm=DynamicMIS(T1), adversary=ChurnAdversary(N, FlipChurn(base, 0.0), RngFactory(4).stream("a")),
            rounds=4 * T1, seed=4,
        )
        reports = verify_locally_static(trace, alpha=2, grace=2 * T1 + 1)
        assert reports and all(report.stabilised for report in reports)


class TestCorollary12ConflictResolution:
    def test_inserted_conflicts_resolve_within_window(self):
        base = make_base(5)
        adversary = TargetedColoringAdversary(
            base, attacks_per_round=2, lifetime=2 * T1, rng=RngFactory(5).stream("adv")
        )
        trace = run_simulation(n=N, algorithm=DynamicColoring(T1), adversary=adversary, rounds=4 * T1, seed=5)
        durations = conflict_resolution_times(trace, adversary.attack_log, max_wait=2 * T1)
        resolved = [d for d in durations if not d["censored"]]
        assert resolved, "the adversary should have found conflicts to create"
        assert max(d["duration"] for d in resolved) <= T1
        # During the whole attack the sliding-window solution stays valid.
        assert verify_t_dynamic(trace, coloring_problem_pair(), T1) == []


class TestAsynchronousWakeup:
    @pytest.mark.parametrize("schedule_kind", ["staggered", "uniform"])
    def test_coloring_valid_under_gradual_wakeup(self, schedule_kind):
        base = make_base(6)
        if schedule_kind == "staggered":
            wakeup = StaggeredWakeup(N, batch_size=4, interval=2)
        else:
            wakeup = UniformRandomWakeup(N, spread=2 * T1, rng=RngFactory(6).stream("wake"))
        adversary = ChurnAdversary(N, FlipChurn(base, 0.02), RngFactory(6).stream("adv"), wakeup=wakeup)
        trace = run_simulation(n=N, algorithm=DynamicColoring(T1), adversary=adversary, rounds=4 * T1, seed=6)
        assert verify_t_dynamic(trace, coloring_problem_pair(), T1) == []

    def test_awake_sets_grow_monotonically(self):
        base = make_base(7)
        wakeup = StaggeredWakeup(N, batch_size=3, interval=1)
        adversary = ChurnAdversary(N, FlipChurn(base, 0.02), RngFactory(7).stream("adv"), wakeup=wakeup)
        trace = run_simulation(n=N, algorithm=DynamicMIS(T1), adversary=adversary, rounds=T1, seed=7)
        previous = frozenset()
        for r in trace.rounds():
            nodes = trace.topology(r).nodes
            assert previous <= nodes
            previous = nodes


class TestFreezeAndMobilityScenarios:
    def test_smis_decides_after_freeze(self):
        base = make_base(8)
        inner = ChurnAdversary(N, FlipChurn(base, 0.05), RngFactory(8).stream("adv"))
        adversary = FreezeAfterAdversary(inner, freeze_round=10)
        trace = run_simulation(n=N, algorithm=SMis(), adversary=adversary, rounds=10 + 4 * T1, seed=8)
        done = rounds_to_completion(trace, start_round=10)
        assert done is not None

    def test_mobility_scenario_runs_and_stays_valid(self):
        mobility = RandomWaypointMobility(N, radius=0.3, speed=0.02, rng=RngFactory(9).stream("mob"))
        adversary = MobilityAdversary(mobility)
        trace = run_simulation(n=N, algorithm=DynamicColoring(T1), adversary=adversary, rounds=2 * T1, seed=9)
        assert verify_t_dynamic(trace, coloring_problem_pair(), T1) == []
