"""Unit tests for the churn processes."""

import pytest

from repro.errors import ConfigurationError
from repro.dynamics import generators
from repro.dynamics.churn import (
    BurstChurn,
    CompositeChurn,
    EdgeInsertionChurn,
    FlipChurn,
    MarkovEdgeChurn,
    StaticChurn,
)


@pytest.fixture
def base(rng_factory):
    return generators.gnp(20, 0.3, rng_factory.stream("churn-base"))


class TestStaticChurn:
    def test_returns_base_every_round(self, base, rng_factory):
        churn = StaticChurn(base)
        rng = rng_factory.stream("static")
        for r in range(1, 5):
            assert churn.step(r, rng) == base.edges


class TestMarkovAndFlip:
    def test_zero_probabilities_keep_edges(self, base, rng_factory):
        churn = MarkovEdgeChurn(base, p_off=0.0, p_on=0.0)
        assert churn.step(1, rng_factory.stream("m")) == base.edges

    def test_always_off(self, base, rng_factory):
        churn = MarkovEdgeChurn(base, p_off=1.0, p_on=0.0)
        rng = rng_factory.stream("m2")
        assert churn.step(1, rng) == frozenset()
        assert churn.step(2, rng) == frozenset()

    def test_oscillation_with_full_probabilities(self, base, rng_factory):
        churn = MarkovEdgeChurn(base, p_off=1.0, p_on=1.0)
        rng = rng_factory.stream("m3")
        assert churn.step(1, rng) == frozenset()
        assert churn.step(2, rng) == base.edges

    def test_edges_stay_within_base(self, base, rng_factory):
        churn = FlipChurn(base, 0.3)
        rng = rng_factory.stream("flip")
        for r in range(1, 20):
            assert churn.step(r, rng) <= base.edges

    def test_reset_restores_initial_state(self, base, rng_factory):
        churn = FlipChurn(base, 0.5)
        rng = rng_factory.stream("flip-reset")
        first = churn.step(1, rng)
        churn.reset()
        again = churn.step(1, rng_factory.stream("flip-reset"))
        assert first == again

    def test_flip_prob_accessor(self, base):
        assert FlipChurn(base, 0.25).flip_prob == 0.25

    def test_invalid_probability_rejected(self, base):
        with pytest.raises(ConfigurationError):
            MarkovEdgeChurn(base, p_off=1.5, p_on=0.0)

    def test_empty_base_graph(self, rng_factory):
        churn = MarkovEdgeChurn(generators.empty(5), p_off=0.5, p_on=0.5)
        assert churn.step(1, rng_factory.stream("e")) == frozenset()


class TestBurstChurn:
    def test_no_burst_keeps_all_edges(self, base, rng_factory):
        churn = BurstChurn(base, burst_prob=0.0, drop_fraction=0.5)
        assert churn.step(1, rng_factory.stream("b")) == base.edges

    def test_burst_drops_expected_fraction(self, base, rng_factory):
        churn = BurstChurn(base, burst_prob=1.0, drop_fraction=0.5)
        edges = churn.step(1, rng_factory.stream("b2"))
        assert len(edges) == round(base.num_edges * 0.5)
        assert edges <= base.edges

    def test_full_drop(self, base, rng_factory):
        churn = BurstChurn(base, burst_prob=1.0, drop_fraction=1.0)
        assert churn.step(1, rng_factory.stream("b3")) == frozenset()


class TestEdgeInsertionChurn:
    def test_keeps_base_and_adds_extras(self, base, rng_factory):
        churn = EdgeInsertionChurn(base, insertions_per_round=3, lifetime=2)
        rng = rng_factory.stream("ins")
        edges = churn.step(1, rng)
        assert base.edges <= edges

    def test_inserted_edges_expire(self, base, rng_factory):
        churn = EdgeInsertionChurn(base, insertions_per_round=5, lifetime=1)
        rng = rng_factory.stream("ins2")
        first = churn.step(1, rng)
        inserted = first - base.edges
        later = churn.step(3, rng)
        # Lifetime 1 starting at round 1 expires before round 3.
        assert not (inserted & (later - base.edges)) or inserted <= base.edges

    def test_invalid_lifetime_rejected(self, base):
        with pytest.raises(ConfigurationError):
            EdgeInsertionChurn(base, insertions_per_round=1, lifetime=0)

    def test_reset_clears_active_edges(self, base, rng_factory):
        churn = EdgeInsertionChurn(base, insertions_per_round=5, lifetime=10)
        churn.step(1, rng_factory.stream("ins3"))
        churn.reset()
        assert churn.step(1, rng_factory.stream("ins4")) - base.edges is not None


class TestCompositeChurn:
    def test_union_of_processes(self, base, rng_factory):
        half_a = FlipChurn(base, 1.0)  # toggles everything off in round 1
        keep = StaticChurn(base)
        churn = CompositeChurn([half_a, keep])
        assert churn.step(1, rng_factory.stream("c")) == base.edges

    def test_requires_processes(self):
        with pytest.raises(ConfigurationError):
            CompositeChurn([])
