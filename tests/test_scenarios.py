"""Tests for the declarative scenario API (:mod:`repro.scenarios`).

Covers the registry mechanics (registration, lookup, duplicate keys), the
``ScenarioSpec`` JSON round-trip, override derivation, duration expressions,
the parallel-vs-serial executor equivalence (same seeds ⇒ identical rows) and
one migrated experiment smoke test.
"""

import json

import pytest

from repro.errors import ConfigurationError, RegistryError
from repro.scenarios import (
    ADVERSARIES,
    ALGORITHMS,
    METRICS,
    TOPOLOGIES,
    WAKEUPS,
    ComponentSpec,
    Registry,
    ScenarioSpec,
    available,
    component,
    resolve_expression,
    run_scenario,
    run_scenario_seed,
    sweep,
)


# ---------------------------------------------------------------------------
# registries
# ---------------------------------------------------------------------------


class TestRegistry:
    def test_register_and_get(self):
        registry = Registry("demo")
        registry.register("alpha", lambda: "a")
        assert registry.get("alpha")() == "a"
        assert "alpha" in registry
        assert len(registry) == 1

    def test_register_as_decorator(self):
        registry = Registry("demo")

        @registry.register("beta")
        def build():
            return "b"

        assert registry.get("beta") is build

    def test_duplicate_key_rejected(self):
        registry = Registry("demo")
        registry.register("alpha", lambda: "a")
        with pytest.raises(RegistryError, match="already registered"):
            registry.register("alpha", lambda: "other")

    def test_overwrite_opt_in(self):
        registry = Registry("demo")
        registry.register("alpha", lambda: "a")
        registry.register("alpha", lambda: "new", overwrite=True)
        assert registry.get("alpha")() == "new"

    def test_unknown_key_lists_alternatives(self):
        registry = Registry("demo")
        registry.register("alpha", lambda: "a")
        with pytest.raises(RegistryError, match="alpha"):
            registry.get("nope")

    def test_invalid_keys_and_factories(self):
        registry = Registry("demo")
        with pytest.raises(RegistryError):
            registry.register("", lambda: "a")
        with pytest.raises(RegistryError):
            registry.register("x", "not-callable")

    def test_available_is_sorted(self):
        registry = Registry("demo")
        registry.register("zeta", lambda: None)
        registry.register("alpha", lambda: None)
        assert registry.available() == ("alpha", "zeta")
        assert list(registry) == ["alpha", "zeta"]

    def test_builtin_components_registered(self):
        assert "gnp_sparse" in TOPOLOGIES
        assert "flip-churn" in ADVERSARIES
        assert "dynamic-coloring" in ALGORITHMS
        assert "staggered" in WAKEUPS
        assert "validity" in METRICS

    def test_available_discovery_surface(self):
        everything = available()
        assert set(everything) == {
            "topologies",
            "adversaries",
            "algorithms",
            "wakeups",
            "metrics",
            "probes",
            "stop_conditions",
            "contracts",
        }
        assert "dynamic-mis" in available("algorithms")
        assert "delta-vs-snapshot" in available("contracts")
        with pytest.raises(RegistryError):
            available("bogus")


# ---------------------------------------------------------------------------
# specs
# ---------------------------------------------------------------------------


def demo_spec(**overrides):
    base = dict(
        n=24,
        name="demo",
        topology="gnp_sparse",
        adversary=component("flip-churn", flip_prob=0.02),
        algorithm="dynamic-coloring",
        rounds="2*T1",
        seeds=(0, 1, 2),
        metrics=(
            component("validity", problem="coloring"),
            component("stability", warmup="T1"),
        ),
    )
    base.update(overrides)
    return ScenarioSpec(**base)


class TestScenarioSpec:
    def test_component_coercion(self):
        spec = demo_spec(adversary="static", metrics=("message-size",))
        assert spec.adversary == ComponentSpec("static")
        assert spec.metrics == (ComponentSpec("message-size"),)

    def test_dict_round_trip(self):
        spec = demo_spec(wakeup=component("staggered", batch_size=4))
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_json_round_trip(self):
        spec = demo_spec(stop="all-decided", window=10)
        text = spec.to_json()
        json.loads(text)  # really is JSON
        assert ScenarioSpec.from_json(text) == spec

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ConfigurationError, match="unknown"):
            ScenarioSpec.from_dict({"n": 8, "algorithm": "smis", "typo": 1})

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ScenarioSpec(n=0, algorithm="smis")
        with pytest.raises(ConfigurationError):
            demo_spec(seeds=())
        with pytest.raises(ConfigurationError):
            demo_spec(rounds=-1)
        with pytest.raises(ConfigurationError):
            demo_spec(window=0)

    def test_with_overrides_dotted_paths(self):
        spec = demo_spec()
        derived = spec.with_overrides(
            {"n": 48, "adversary.params.flip_prob": 0.5, "algorithm.name": "dynamic-mis"}
        )
        assert derived.n == 48
        assert derived.adversary.params["flip_prob"] == 0.5
        assert derived.algorithm.name == "dynamic-mis"
        # the original spec is untouched
        assert spec.n == 24
        assert spec.adversary.params["flip_prob"] == 0.02

    def test_resolved_rounds_expression(self):
        spec = demo_spec(rounds="3*T1 + 2", window=10)
        assert spec.resolved_window() == 10
        assert spec.resolved_rounds() == 32

    def test_label(self):
        assert demo_spec(name="").label == "dynamic-coloring"
        assert demo_spec(name="custom").label == "custom"


class TestResolveExpression:
    def test_plain_ints_pass_through(self):
        assert resolve_expression(7) == 7
        assert resolve_expression(7.9) == 7

    def test_variables(self):
        assert resolve_expression("2*T1 + 1", T1=12) == 25
        assert resolve_expression("20*log2n + 10", log2n=5.0) == 110

    def test_rejects_unknown_names(self):
        with pytest.raises(ConfigurationError):
            resolve_expression("__import__('os')", T1=5)
        with pytest.raises(ConfigurationError):
            resolve_expression("T2 * 3", T1=5)

    def test_rejects_non_expressions(self):
        with pytest.raises(ConfigurationError):
            resolve_expression(None)
        with pytest.raises(ConfigurationError):
            resolve_expression(True)


# ---------------------------------------------------------------------------
# executor
# ---------------------------------------------------------------------------


class TestExecutor:
    def test_run_scenario_seed_is_deterministic(self):
        spec = demo_spec()
        assert run_scenario_seed(spec, 3) == run_scenario_seed(spec, 3)

    def test_rows_in_seed_order_and_complete(self):
        result = run_scenario(demo_spec())
        assert len(result.rows) == 3
        for row in result.rows:
            assert row["valid_fraction"] == 1.0
            assert "mean_changes" in row

    def test_parallel_equals_serial_run_scenario(self):
        spec = demo_spec()
        serial = run_scenario(spec, parallel=False)
        # max_workers=2 forces a real process pool even on single-core runners
        parallel = run_scenario(spec, parallel=True, max_workers=2)
        assert serial.rows == parallel.rows
        # byte-identical, aggregation included
        keys = ("valid_fraction", "mean_changes")
        assert json.dumps(serial.aggregate(mean_keys=keys), sort_keys=True) == json.dumps(
            parallel.aggregate(mean_keys=keys), sort_keys=True
        )

    def test_parallel_equals_serial_sweep(self):
        spec = demo_spec()
        over = {"adversary.params.flip_prob": [0.0, 0.05], "n": [16, 24]}
        serial = sweep(spec, over=over, parallel=False)
        parallel = sweep(spec, over=over, parallel=True, max_workers=2)
        assert len(serial) == len(parallel) == 4
        for s_point, p_point in zip(serial, parallel):
            assert s_point.overrides == p_point.overrides
            assert s_point.rows == p_point.rows
            assert json.dumps(s_point.rows, sort_keys=True) == json.dumps(
                p_point.rows, sort_keys=True
            )

    def test_sweep_grid_order_and_overrides(self):
        results = sweep(demo_spec(), over={"n": [8, 12]})
        assert [r.overrides["n"] for r in results] == [8, 12]
        assert [r.spec.n for r in results] == [8, 12]

    def test_sweep_requires_axes(self):
        with pytest.raises(ConfigurationError):
            sweep(demo_spec(), over={})
        with pytest.raises(ConfigurationError):
            sweep(demo_spec(), over={"n": []})

    def test_stop_condition_ends_run_early(self):
        spec = ScenarioSpec(
            n=16,
            algorithm="basic-coloring",
            adversary="static",
            rounds=500,
            seeds=(0,),
            stop="all-decided",
            metrics=(component("convergence"), component("trace-summary")),
        )
        row = run_scenario(spec).rows[0]
        assert row["completed"] == 1.0
        assert row["trace_rounds"] < 500

    def test_probe_scenario(self):
        spec = ScenarioSpec(
            n=16,
            algorithm="basic-coloring",
            adversary="static",
            rounds=60,
            seeds=(0,),
            probe="palette-shrink",
        )
        row = run_scenario(spec).rows[0]
        assert row["node_rounds_no_shrink"] + row["node_rounds_shrink"] > 0

    def test_aggregate_matches_analysis_sweep(self):
        result = run_scenario(demo_spec())
        agg = result.aggregate(mean_keys=("valid_fraction",), std_keys=("valid_fraction",))
        assert agg["valid_fraction_mean"] == 1.0
        assert agg["valid_fraction_std"] == 0.0
        assert agg["replicas"] == 3.0


# ---------------------------------------------------------------------------
# migrated experiments (smoke)
# ---------------------------------------------------------------------------


class TestMigratedExperiments:
    def test_e04_runs_through_scenarios_and_parallel_matches(self):
        from repro.analysis.experiments import experiment_e04_tdynamic_coloring

        serial = experiment_e04_tdynamic_coloring(
            n=20, flip_probs=(0.01, 0.05), seeds=(0, 1, 2), rounds_factor=2, parallel=False
        )
        parallel = experiment_e04_tdynamic_coloring(
            n=20, flip_probs=(0.01, 0.05), seeds=(0, 1, 2), rounds_factor=2, parallel=True
        )
        assert json.dumps(serial, sort_keys=True) == json.dumps(parallel, sort_keys=True)
        assert serial[0]["valid_fraction_mean"] == 1.0

    def test_repro_root_exports(self):
        import repro

        assert repro.ScenarioSpec is ScenarioSpec
        assert callable(repro.run_scenario)
        assert callable(repro.sweep)
        assert "algorithms" in repro.available()


# ---------------------------------------------------------------------------
# the input -> input_assignment rename (deprecation cycle completed)
# ---------------------------------------------------------------------------


class TestInputAssignmentRename:
    def _run(self, **kwargs):
        from repro.algorithms.coloring import BasicColoring
        from repro.dynamics import generators
        from repro.dynamics.adversaries import StaticAdversary
        from repro.runtime.simulator import run_simulation

        return run_simulation(
            n=4,
            algorithm=BasicColoring(),
            adversary=StaticAdversary(generators.ring(4)),
            rounds=20,
            seed=1,
            **kwargs,
        )

    def test_new_name_accepted_silently(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            trace = self._run(input_assignment={0: 2})
        assert trace.num_rounds >= 1

    def test_old_name_raises(self):
        with pytest.raises(ConfigurationError, match="input_assignment"):
            self._run(input={0: 2})

    def test_old_name_raises_in_combined_runner(self):
        from repro.core.runner import run_combined
        from repro.algorithms.coloring import DColor, SColor
        from repro.dynamics import generators
        from repro.dynamics.adversaries import StaticAdversary

        with pytest.raises(ConfigurationError, match="input_assignment"):
            run_combined(
                n=4,
                static_factory=SColor,
                dynamic_factory=DColor,
                adversary=StaticAdversary(generators.ring(4)),
                rounds=4,
                input={0: 2},
            )

    def test_both_names_rejected(self):
        with pytest.raises(ConfigurationError, match="input_assignment"):
            self._run(input={0: 2}, input_assignment={0: 2})
