"""Unit tests for the runtime layer: messages, algorithm API, metrics, trace."""

import pytest

from repro.errors import AlgorithmError, SimulationError
from repro.types import Interval
from repro.utils.rng import RngFactory
from repro.dynamics.topology import Topology
from repro.runtime.algorithm import AlgorithmSetup, DistributedAlgorithm
from repro.runtime.messages import estimate_bits
from repro.runtime.metrics import RoundMetrics
from repro.runtime.trace import ExecutionTrace


class TestEstimateBits:
    def test_primitives(self):
        assert estimate_bits(None) == 1
        assert estimate_bits(True) == 1
        assert estimate_bits(0) == 2
        assert estimate_bits(255) == 9
        assert estimate_bits(1.5) == 64
        assert estimate_bits("abc") == 24

    def test_containers_sum_elements(self):
        assert estimate_bits((1, 2)) > estimate_bits(1)
        assert estimate_bits({"a": 1}) > estimate_bits(1)
        assert estimate_bits([1, 2, 3]) >= estimate_bits((1, 2, 3))

    def test_larger_ints_cost_more(self):
        assert estimate_bits(2**20) > estimate_bits(2**5)

    def test_fallback_for_exotic_objects(self):
        class Thing:
            def __repr__(self):
                return "thing"

        assert estimate_bits(Thing()) == 8 * len("thing")


class _Echo(DistributedAlgorithm):
    """Minimal algorithm used to test the base-class plumbing."""

    name = "echo"

    def __init__(self):
        super().__init__()
        self.values = {}

    def on_wake(self, v):
        self.values[v] = self.config.input_value(v)

    def compose(self, v):
        return v

    def deliver(self, v, inbox):
        self.values[v] = sorted(inbox)

    def output(self, v):
        return tuple(self.values.get(v, ())) or None


class TestAlgorithmBase:
    def test_config_before_setup_raises(self):
        algorithm = _Echo()
        with pytest.raises(AlgorithmError):
            _ = algorithm.config

    def test_setup_and_input_value(self):
        algorithm = _Echo()
        algorithm.setup(AlgorithmSetup(n=4, rng_factory=RngFactory(1), input={2: "x"}))
        assert algorithm.config.input_value(2) == "x"
        assert algorithm.config.input_value(0) is None
        assert algorithm.n == 4

    def test_wake_is_idempotent(self):
        algorithm = _Echo()
        algorithm.setup(AlgorithmSetup(n=4, rng_factory=RngFactory(1)))
        algorithm.wake(1)
        algorithm.wake(1)
        assert algorithm.awake_nodes == frozenset({1})

    def test_per_node_rng_streams_differ(self):
        algorithm = _Echo()
        algorithm.setup(AlgorithmSetup(n=4, rng_factory=RngFactory(1)))
        assert float(algorithm.rng(0).random()) != float(algorithm.rng(1).random())

    def test_outputs_helper(self):
        algorithm = _Echo()
        algorithm.setup(AlgorithmSetup(n=4, rng_factory=RngFactory(1)))
        algorithm.wake(0)
        algorithm.deliver(0, {1: 1})
        assert algorithm.outputs() == {0: (1,)}


class TestRoundMetrics:
    def test_mean_message_bits(self):
        metrics = RoundMetrics(
            round_index=1,
            num_awake=2,
            num_edges=1,
            messages_sent=2,
            messages_delivered=2,
            max_message_bits=10,
            total_message_bits=16,
            outputs_changed=2,
        )
        assert metrics.mean_message_bits == 8.0
        flat = metrics.as_dict()
        assert flat["round"] == 1.0 and flat["mean_message_bits"] == 8.0

    def test_zero_messages(self):
        metrics = RoundMetrics(1, 0, 0, 0, 0, 0, 0, 0)
        assert metrics.mean_message_bits == 0.0

    def test_algorithm_counters_prefixed(self):
        metrics = RoundMetrics(1, 1, 0, 1, 0, 1, 1, 0, algorithm_counters={"undecided": 3})
        assert metrics.as_dict()["alg.undecided"] == 3.0


def _metrics(r):
    return RoundMetrics(r, 2, 1, 2, 2, 4, 8, 0)


class TestExecutionTrace:
    def test_record_and_access(self):
        trace = ExecutionTrace(3, "alg", "adv")
        topo = Topology([0, 1], [(0, 1)])
        trace.record(topo, {0: "a", 1: "b"}, _metrics(1))
        trace.record(topo, {0: "a", 1: "c"}, _metrics(2))
        assert trace.num_rounds == 2
        assert trace.outputs(1) == {0: "a", 1: "b"}
        assert trace.output_of(1, 2) == "c"
        assert trace.output_series(1) == ["b", "c"]
        assert trace.topology(2) == topo
        assert list(trace.rounds()) == [1, 2]

    def test_changed_nodes(self):
        trace = ExecutionTrace(3, "alg", "adv")
        topo = Topology([0, 1], [])
        trace.record(topo, {0: 1, 1: 1}, _metrics(1))
        trace.record(topo, {0: 1, 1: 2}, _metrics(2))
        assert trace.changed_nodes(1) == frozenset({0, 1})
        assert trace.changed_nodes(2) == frozenset({1})

    def test_output_changes_in_interval(self):
        trace = ExecutionTrace(3, "alg", "adv")
        topo = Topology([0], [])
        for value in (1, 1, 2, 2, 3):
            trace.record(topo, {0: value}, _metrics(1))
        assert trace.output_changes_in(0, Interval(1, 5)) == 2
        assert trace.output_changes_in(0, Interval(3, 4)) == 0

    def test_out_of_range_round_raises(self):
        trace = ExecutionTrace(2, "alg", "adv")
        with pytest.raises(SimulationError):
            trace.outputs(1)

    def test_metric_series_and_summary(self):
        trace = ExecutionTrace(3, "alg", "adv")
        topo = Topology([0, 1], [(0, 1)])
        trace.record(topo, {0: 1, 1: 1}, _metrics(1))
        assert trace.metric_series("num_edges") == [1.0]
        summary = trace.summary()
        assert summary["rounds"] == 1.0 and summary["n"] == 3.0

    def test_first_round_where(self):
        trace = ExecutionTrace(3, "alg", "adv")
        topo = Topology([0], [])
        trace.record(topo, {0: None}, _metrics(1))
        trace.record(topo, {0: 5}, _metrics(2))
        assert trace.first_round_where(lambda rec: rec.outputs[0] is not None) == 2
        assert trace.first_round_where(lambda rec: rec.outputs[0] == 99) is None
