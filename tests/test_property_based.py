"""Property-based tests (hypothesis) for the core data structures and problem invariants."""

from hypothesis import given, settings, strategies as st

from repro.types import canonical_edge
from repro.dynamics.topology import Topology
from repro.dynamics.window import SlidingWindow
from repro.problems.coloring import coloring_problem_pair, is_proper_coloring
from repro.problems.mis import mis_assignment_from_set, mis_problem_pair
from repro.runtime.messages import estimate_bits
from repro.algorithms.coloring.greedy import greedy_coloring
from repro.algorithms.mis.greedy import greedy_mis

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

NODE_COUNT = st.integers(min_value=2, max_value=12)


@st.composite
def topologies(draw, min_nodes=2, max_nodes=12):
    n = draw(st.integers(min_value=min_nodes, max_value=max_nodes))
    possible = [(i, j) for i in range(n) for j in range(i + 1, n)]
    edges = draw(st.lists(st.sampled_from(possible), unique=True, max_size=len(possible)) if possible else st.just([]))
    return Topology(range(n), edges)


@st.composite
def topology_sequences(draw, length=6, n=8):
    possible = [(i, j) for i in range(n) for j in range(i + 1, n)]
    sequence = []
    for _ in range(length):
        edges = draw(st.lists(st.sampled_from(possible), unique=True, max_size=len(possible)))
        sequence.append(Topology(range(n), edges))
    return sequence


# ---------------------------------------------------------------------------
# Basic structures
# ---------------------------------------------------------------------------

@given(st.integers(0, 1000), st.integers(0, 1000))
def test_canonical_edge_is_sorted_or_raises(u, v):
    if u == v:
        return
    edge = canonical_edge(u, v)
    assert edge[0] < edge[1]
    assert edge == canonical_edge(v, u)


@given(topologies())
def test_degree_sums_to_twice_edges(topo):
    assert sum(topo.degree(v) for v in topo.nodes) == 2 * topo.num_edges


@given(topologies(), st.integers(0, 3))
def test_ball_monotone_in_radius(topo, radius):
    center = min(topo.nodes)
    assert topo.ball(center, radius) <= topo.ball(center, radius + 1)


@given(topologies())
def test_subgraph_of_all_nodes_is_identity(topo):
    assert topo.subgraph(topo.nodes) == topo


@settings(max_examples=30)
@given(topology_sequences(), st.integers(1, 6))
def test_sliding_window_matches_bruteforce(sequence, T):
    window = SlidingWindow(T)
    for r, topo in enumerate(sequence, start=1):
        snap = window.push(topo)
        lo = max(0, r - T)
        expected_union = set()
        expected_inter = set(sequence[lo].edges)
        for t in sequence[lo:r]:
            expected_union |= t.edges
            expected_inter &= t.edges
        assert snap.union.edges == frozenset(expected_union)
        assert snap.intersection.edges == frozenset(expected_inter)


@settings(max_examples=30)
@given(topology_sequences(length=5))
def test_intersection_subset_of_union(sequence):
    window = SlidingWindow(3)
    for topo in sequence:
        snap = window.push(topo)
        assert snap.intersection.edges <= snap.union.edges
        assert snap.intersection.nodes == snap.union.nodes


# ---------------------------------------------------------------------------
# Packing / covering monotonicity (Definition 3.1)
# ---------------------------------------------------------------------------

@settings(max_examples=40)
@given(topologies())
def test_greedy_coloring_solves_pair_and_survives_edge_removal(topo):
    pair = coloring_problem_pair()
    colors = greedy_coloring(topo)
    assert pair.packing.is_solution(topo, colors)
    assert pair.covering.is_solution(topo, colors)
    # Packing survives removing an arbitrary edge.
    if topo.edges:
        edge = sorted(topo.edges)[0]
        smaller = topo.with_edges(remove=[edge])
        assert pair.packing.is_solution(smaller, colors)


@settings(max_examples=40)
@given(topologies())
def test_degree_range_covering_survives_edge_addition(topo):
    pair = coloring_problem_pair()
    colors = greedy_coloring(topo)
    nodes = sorted(topo.nodes)
    missing = [
        (u, v)
        for i, u in enumerate(nodes)
        for v in nodes[i + 1 :]
        if not topo.has_edge(u, v)
    ]
    if missing:
        bigger = topo.with_edges(add=[missing[0]])
        assert pair.covering.is_solution(bigger, colors)


@settings(max_examples=40)
@given(topologies())
def test_greedy_mis_solves_pair_with_expected_monotonicity(topo):
    pair = mis_problem_pair()
    assignment = mis_assignment_from_set(topo, greedy_mis(topo))
    assert pair.packing.is_solution(topo, assignment)
    assert pair.covering.is_solution(topo, assignment)
    # Independence survives edge removal.
    if topo.edges:
        smaller = topo.with_edges(remove=[sorted(topo.edges)[0]])
        assert pair.packing.is_solution(smaller, assignment)
    # Domination survives edge addition.
    nodes = sorted(topo.nodes)
    missing = [
        (u, v)
        for i, u in enumerate(nodes)
        for v in nodes[i + 1 :]
        if not topo.has_edge(u, v)
    ]
    if missing:
        bigger = topo.with_edges(add=[missing[0]])
        assert pair.covering.is_solution(bigger, assignment)


@settings(max_examples=40)
@given(topologies())
def test_greedy_coloring_is_proper_and_degree_bounded(topo):
    colors = greedy_coloring(topo)
    assert is_proper_coloring(topo, colors)
    assert all(1 <= colors[v] <= topo.degree(v) + 1 for v in topo.nodes)


# ---------------------------------------------------------------------------
# Message accounting
# ---------------------------------------------------------------------------

@given(
    st.recursive(
        st.one_of(st.none(), st.booleans(), st.integers(-10**6, 10**6), st.floats(allow_nan=False), st.text(max_size=8)),
        lambda children: st.lists(children, max_size=4) | st.dictionaries(st.text(max_size=3), children, max_size=3),
        max_leaves=8,
    )
)
def test_estimate_bits_always_positive(message):
    assert estimate_bits(message) >= 1
