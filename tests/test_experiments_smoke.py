"""Smoke tests for the E1–E13 experiment implementations (tiny parameters).

These do not validate the scientific claims (the full-size benchmark harness
and EXPERIMENTS.md do); they pin down the row schema every experiment returns
and make sure the harness code paths stay runnable.
"""

import math

import pytest

from repro.analysis import experiments as E
from repro.analysis.report import format_table


def assert_rows(rows, required_keys):
    assert rows, "experiment returned no rows"
    for row in rows:
        for key in required_keys:
            assert key in row, f"missing key {key!r} in {sorted(row)}"
    # The report renderer must accept every experiment's rows.
    assert format_table(rows)


class TestColoringExperiments:
    def test_e01(self):
        rows = E.experiment_e01_coloring_convergence(sizes=(16, 32), seeds=(0,), max_round_factor=15)
        assert_rows(rows, ["n", "rounds_mean", "rounds_over_log2n", "setting"])
        assert len(rows) == 4  # two settings per size
        for row in rows:
            assert not math.isnan(row["rounds_mean"])

    def test_e02(self):
        rows = E.experiment_e02_palette_lemma(n=32, seeds=(0,), rounds=20)
        assert_rows(rows, ["setting", "colored_rate_given_no_shrink", "paper_lower_bound"])
        for row in rows:
            assert row["satisfies_bound"] == 1.0

    def test_e03(self):
        rows = E.experiment_e03_conflict_resolution(sizes=(24,), seeds=(0,), attacks_per_round=1, rounds_factor=3)
        assert_rows(rows, ["n", "window_T1", "mean_duration_mean", "max_duration_max"])

    def test_e04(self):
        rows = E.experiment_e04_tdynamic_coloring(n=24, flip_probs=(0.01,), seeds=(0,), rounds_factor=2)
        assert_rows(rows, ["flip_prob", "valid_fraction_mean", "max_color_mean"])
        assert rows[0]["valid_fraction_mean"] == 1.0


class TestMisExperiments:
    def test_e06(self):
        rows = E.experiment_e06_mis_edge_decay(n=48, seeds=(0, 1), rounds=15)
        assert_rows(rows, ["mean_two_round_ratio", "paper_upper_bound", "observations"])
        assert rows[0]["mean_two_round_ratio"] <= rows[0]["paper_upper_bound"] + 0.05

    def test_e07(self):
        rows = E.experiment_e07_mis_convergence(sizes=(16, 32), seeds=(0,), max_round_factor=15, validity_rounds_factor=2)
        assert_rows(rows, ["n", "rounds_mean", "valid_fraction_mean", "rounds_over_log2n"])

    def test_e08(self):
        rows = E.experiment_e08_smis_freeze_decision(sizes=(24,), seeds=(0,), churn_rounds=6, max_round_factor=20)
        assert_rows(rows, ["n", "rounds_after_freeze_mean", "changes_after_decided_mean"])
        assert rows[0]["changes_after_decided_mean"] == 0.0


class TestFrameworkExperiments:
    def test_e05(self):
        rows = E.experiment_e05_local_stability(n=49, seeds=(0,), rounds_factor=5, protected_radius=2)
        assert_rows(rows, ["algorithm", "changes_protected_mean", "changes_control_mean"])
        for row in rows:
            assert row["changes_protected_mean"] == 0.0

    def test_e09(self):
        rows = E.experiment_e09_baseline_comparison(n=24, seeds=(0,), rounds_factor=3)
        assert_rows(rows, ["algorithm", "valid_fraction_mean", "mean_changes_mean"])
        by_name = {row["algorithm"]: row for row in rows}
        assert by_name["dynamic-coloring"]["valid_fraction_mean"] >= by_name["restart-coloring"]["valid_fraction_mean"]

    def test_e10(self):
        rows = E.experiment_e10_adversary_sensitivity(n=24, seeds=(0,), attacks_per_round=2, max_round_factor=20)
        assert_rows(rows, ["setting", "n"])
        assert len(rows) == 3

    def test_e11(self):
        rows = E.experiment_e11_async_wakeup(n=24, seeds=(0,), rounds_factor=4)
        assert_rows(rows, ["schedule", "algorithm", "valid_fraction_mean"])
        assert len(rows) == 6

    def test_e12(self):
        rows = E.experiment_e12_message_size(sizes=(16, 64), rounds_factor=2)
        assert_rows(rows, ["algorithm", "n", "max_message_bits"])
        combined = [row for row in rows if row["algorithm"] == "dynamic-coloring"]
        singles = [row for row in rows if row["algorithm"] == "scolor"]
        assert combined[0]["max_message_bits"] > singles[0]["max_message_bits"]

    @pytest.mark.slow
    def test_e13(self):
        rows = E.experiment_e13_ablations(n=36, seeds=(0,), rounds_factor=3)
        assert_rows(rows, ["ablation", "variant"])
        by_variant = {row["variant"]: row for row in rows}
        assert by_variant["scolor"]["b1_violation_fraction_mean"] <= by_variant["scolor-no-uncolor"]["b1_violation_fraction_mean"]
        assert by_variant["dynamic-coloring"]["mean_changes_mean"] <= by_variant["coloring-no-backbone"]["mean_changes_mean"]
