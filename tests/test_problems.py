"""Tests of the problem framework: LCL base, MIS pair, colouring pair, matching, vertex cover."""

import pytest

from repro.dynamics.topology import Topology
from repro.dynamics import generators
from repro.problems import (
    DominatingSetProblem,
    IndependentSetProblem,
    DegreePlusOneRangeProblem,
    ProperColoringProblem,
    MatchingMaximalityProblem,
    MatchingValidityProblem,
    UNMATCHED,
    VertexCoverCoverageProblem,
    VertexCoverMinimalityProblem,
    coloring_problem_pair,
    is_maximal_independent_set,
    is_proper_coloring,
    matching_problem_pair,
    mis_problem_pair,
    vertex_cover_problem_pair,
)
from repro.problems.mis import mis_assignment_from_set
from repro.problems.coloring import num_colors_used
from repro.problems.matching import matched_pairs


@pytest.fixture
def path5():
    return generators.path(5)


class TestIndependentSet:
    def test_solution_check(self, path5):
        problem = IndependentSetProblem()
        good = {0: 1, 1: 0, 2: 1, 3: 0, 4: 1}
        bad = {0: 1, 1: 1, 2: 0, 3: 0, 4: 1}
        assert problem.is_solution(path5, good)
        assert not problem.is_solution(path5, bad)
        assert problem.violations(path5, bad) == [0, 1]

    def test_partial_packing(self, path5):
        problem = IndependentSetProblem()
        assert problem.is_partial_packing(path5, {0: 1, 2: 1})
        assert not problem.is_partial_packing(path5, {0: 1, 1: 1})

    def test_undecided_nodes_reported(self, path5):
        problem = IndependentSetProblem()
        assert problem.undecided_nodes(path5, {0: 1}) == [1, 2, 3, 4]

    def test_members_helper(self):
        assert IndependentSetProblem.members({0: 1, 1: 0, 2: None}) == frozenset({0})


class TestDominatingSet:
    def test_solution_check(self, path5):
        problem = DominatingSetProblem()
        good = {0: 1, 1: 0, 2: 1, 3: 0, 4: 1}
        assert problem.is_solution(path5, good)
        bad = {0: 0, 1: 0, 2: 1, 3: 0, 4: 1}
        assert not problem.is_solution(path5, bad)

    def test_partial_covering_only_checks_declared_dominated(self, path5):
        problem = DominatingSetProblem()
        # Node 4 declared dominated without a dominator -> not partial covering.
        assert not problem.is_partial_covering(path5, {4: 0})
        # Node 4 undecided -> fine; node 3 dominated by 2.
        assert problem.is_partial_covering(path5, {2: 1, 3: 0})


class TestMisPair:
    def test_pair_full_solution(self, path5):
        pair = mis_problem_pair()
        mis = {0, 2, 4}
        assignment = mis_assignment_from_set(path5, mis)
        assert pair.is_full_solution(path5, assignment)
        assert is_maximal_independent_set(path5, mis)

    def test_not_maximal(self, path5):
        assert not is_maximal_independent_set(path5, {0})
        assert not is_maximal_independent_set(path5, {0, 1})

    def test_partial_solution_characterisation(self, path5):
        pair = mis_problem_pair()
        # Independent but with an undominated declared-dominated node.
        assert not pair.is_partial_solution(path5, {0: 1, 3: 0})
        assert pair.is_partial_solution(path5, {0: 1, 1: 0})

    def test_members_outside_graph_rejected(self, triangle):
        assert not is_maximal_independent_set(triangle, {99})


class TestColoringPair:
    def test_proper_coloring_check(self, path5):
        assert is_proper_coloring(path5, {0: 1, 1: 2, 2: 1, 3: 2, 4: 1})
        assert not is_proper_coloring(path5, {0: 1, 1: 1, 2: 2, 3: 1, 4: 2})
        assert not is_proper_coloring(path5, {0: 1})  # incomplete
        assert is_proper_coloring(path5, {0: 1}, require_complete=False)

    def test_degree_plus_one_range(self, path5):
        problem = DegreePlusOneRangeProblem()
        assert problem.check_node(path5, {0: 2}, 0)   # deg(0)+1 = 2
        assert not problem.check_node(path5, {0: 3}, 0)
        assert not problem.check_node(path5, {0: 0}, 0)

    def test_partial_characterisations(self, path5):
        packing = ProperColoringProblem()
        covering = DegreePlusOneRangeProblem()
        assert packing.is_partial_packing(path5, {0: 1, 1: 2})
        assert not packing.is_partial_packing(path5, {0: 1, 1: 1})
        assert covering.is_partial_covering(path5, {1: 3})
        assert not covering.is_partial_covering(path5, {0: 5})

    def test_pair_name_and_full_solution(self, path5):
        pair = coloring_problem_pair()
        assignment = {0: 1, 1: 2, 2: 1, 3: 2, 4: 1}
        assert pair.is_full_solution(path5, assignment)
        assert "proper-coloring" in pair.name

    def test_num_colors_used(self):
        assert num_colors_used({0: 1, 1: 2, 2: 1, 3: None}) == 2


class TestMatchingPair:
    def test_valid_matching(self, path5):
        validity = MatchingValidityProblem()
        maximality = MatchingMaximalityProblem()
        assignment = {0: 1, 1: 0, 2: 3, 3: 2, 4: UNMATCHED}
        assert validity.is_solution(path5, assignment)
        assert maximality.is_solution(path5, assignment)
        assert matching_problem_pair().is_full_solution(path5, assignment)
        assert matched_pairs(assignment) == frozenset({(0, 1), (2, 3)})

    def test_non_mutual_pointer_invalid(self, path5):
        validity = MatchingValidityProblem()
        assert not validity.check_node(path5, {0: 1, 1: UNMATCHED}, 0)

    def test_non_edge_partner_invalid(self, path5):
        validity = MatchingValidityProblem()
        assert not validity.check_node(path5, {0: 3, 3: 0}, 0)

    def test_maximality_violated_by_uncovered_edge(self, path5):
        maximality = MatchingMaximalityProblem()
        assignment = {0: UNMATCHED, 1: UNMATCHED, 2: 3, 3: 2, 4: UNMATCHED}
        assert not maximality.check_node(path5, assignment, 0)

    def test_partial_semantics(self, path5):
        validity = MatchingValidityProblem()
        maximality = MatchingMaximalityProblem()
        # Pointing at an undecided partner is not partial covering.
        assert not validity.check_node_partial(path5, {0: 1}, 0)
        assert validity.check_node_partial(path5, {0: 1, 1: 0}, 0)
        # Unmatched next to an undecided node is still fine for partial packing.
        assert maximality.check_node_partial(path5, {0: UNMATCHED}, 0)
        assert not maximality.check_node_partial(path5, {0: UNMATCHED, 1: UNMATCHED}, 0)


class TestVertexCoverPair:
    def test_cover_and_minimality(self, path5):
        coverage = VertexCoverCoverageProblem()
        minimality = VertexCoverMinimalityProblem()
        assignment = {0: 0, 1: 1, 2: 0, 3: 1, 4: 0}
        assert coverage.is_solution(path5, assignment)
        assert minimality.is_solution(path5, assignment)
        assert vertex_cover_problem_pair().is_full_solution(path5, assignment)

    def test_uncovered_edge_detected(self, path5):
        coverage = VertexCoverCoverageProblem()
        assert not coverage.check_node(path5, {0: 0, 1: 0}, 0)

    def test_redundant_cover_node_detected(self):
        triangle = Topology([0, 1, 2], [(0, 1), (1, 2), (0, 2)])
        minimality = VertexCoverMinimalityProblem()
        all_in = {0: 1, 1: 1, 2: 1}
        assert not minimality.check_node(triangle, all_in, 0)

    def test_complement_of_mis_is_minimal_cover(self, medium_gnp):
        """Cross-validation: V minus a greedy MIS is a minimal vertex cover."""
        from repro.algorithms.mis.greedy import greedy_mis

        mis = greedy_mis(medium_gnp)
        assignment = {v: (0 if v in mis else 1) for v in medium_gnp.nodes}
        assert vertex_cover_problem_pair().is_full_solution(medium_gnp, assignment)

    def test_partial_semantics(self, path5):
        coverage = VertexCoverCoverageProblem()
        minimality = VertexCoverMinimalityProblem()
        assert coverage.check_node_partial(path5, {0: 0}, 0)
        assert not coverage.check_node_partial(path5, {0: 0, 1: 0}, 0)
        assert not minimality.check_node_partial(path5, {0: 1}, 0)
        assert minimality.check_node_partial(path5, {0: 1, 1: 0}, 0)
